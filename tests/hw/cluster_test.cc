/**
 * @file
 * Cluster fabric tests: the interconnect registry, the replicated
 * topology shape (per-node graphs + NICs + switch), the 1-node
 * degeneracy guarantee (bit-exact platform topology, no NIC/switch),
 * node-major GPU selection, inter-node routing over the NIC/switch
 * fabric, and base-relative IB bandwidth scaling.
 */

#include <gtest/gtest.h>

#include "hw/cluster.hh"
#include "hw/fabric.hh"
#include "hw/platform.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using hw::makeCluster;
using hw::makePlatform;

TEST(Cluster, InterconnectRegistryListsTheKnownNetworks)
{
    EXPECT_EQ(hw::interconnectNames(),
              (std::vector<std::string>{"ib100", "ib200", "ib400",
                                        "roce100"}));
    for (const std::string &name : hw::interconnectNames()) {
        EXPECT_TRUE(hw::isInterconnect(name)) << name;
        EXPECT_EQ(hw::makeInterconnect(name).name, name);
        EXPECT_GT(hw::makeInterconnect(name).gbpsPerDir, 0.0) << name;
    }
    EXPECT_FALSE(hw::isInterconnect("omnipath"));
    EXPECT_EQ(std::string(hw::kDefaultInterconnect), "ib100");
    EXPECT_THROW(hw::makeInterconnect("omnipath"), sim::FatalError);
}

TEST(Cluster, OneNodeClusterIsThePlatformBitForBit)
{
    // The determinism digest folds per-link byte counters in link
    // order, so a 1-node cluster must carry the platform topology
    // untouched: same node count (no NIC/switch), same links.
    const hw::Platform plat = makePlatform("dgx1v");
    const hw::Cluster cluster = makeCluster(plat, 1, "ib100");
    EXPECT_EQ(cluster.nodes, 1);
    ASSERT_EQ(cluster.topology.numNodes(), plat.topology.numNodes());
    ASSERT_EQ(cluster.topology.links().size(),
              plat.topology.links().size());
    for (hw::NodeId id = 0; id < plat.topology.numNodes(); ++id) {
        EXPECT_EQ(cluster.topology.nodeKind(id),
                  plat.topology.nodeKind(id));
        EXPECT_EQ(cluster.topology.nodeLabel(id),
                  plat.topology.nodeLabel(id));
    }
    for (std::size_t i = 0; i < plat.topology.links().size(); ++i) {
        const hw::Link &a = cluster.topology.links()[i];
        const hw::Link &b = plat.topology.links()[i];
        EXPECT_EQ(a.a, b.a) << "link " << i;
        EXPECT_EQ(a.b, b.b) << "link " << i;
        EXPECT_EQ(a.type, b.type) << "link " << i;
        EXPECT_DOUBLE_EQ(a.gbpsPerLane, b.gbpsPerLane) << "link " << i;
    }
    EXPECT_EQ(cluster.gpuSet(4), plat.topology.gpuSet(4));
}

TEST(Cluster, MultiNodeShapeReplicatesThePlatform)
{
    const hw::Platform plat = makePlatform("dgx1v");
    const int nodes = 4;
    const hw::Cluster cluster = makeCluster(plat, nodes, "ib200");
    const int stride = plat.topology.numNodes();
    EXPECT_EQ(cluster.nodeStride, stride);
    EXPECT_EQ(cluster.gpusPerNode, plat.topology.numGpus());
    // nodes*stride replicas + one NIC per node + one switch.
    EXPECT_EQ(cluster.topology.numNodes(), nodes * stride + nodes + 1);
    // Replicated labels carry the node prefix.
    EXPECT_EQ(cluster.topology.nodeLabel(0),
              "n0." + plat.topology.nodeLabel(0));
    EXPECT_EQ(cluster.topology.nodeLabel(stride),
              "n1." + plat.topology.nodeLabel(0));
    EXPECT_EQ(cluster.topology.nodeLabel(nodes * stride), "n0.NIC0");
    EXPECT_EQ(cluster.topology.nodeLabel(nodes * stride + nodes),
              "IBSW0");
    // One IB link per NIC at the registered rate.
    int ib_links = 0;
    for (const hw::Link &link : cluster.topology.links()) {
        if (link.type == hw::LinkType::IB) {
            ++ib_links;
            EXPECT_DOUBLE_EQ(link.gbpsPerLane * link.lanes, 25.0);
        }
    }
    EXPECT_EQ(ib_links, nodes);
    // Node membership: replicas, NICs, then the unowned switch.
    EXPECT_EQ(cluster.clusterNodeOf(0), 0);
    EXPECT_EQ(cluster.clusterNodeOf(stride + 3), 1);
    EXPECT_EQ(cluster.clusterNodeOf(nodes * stride + 2), 2);
    EXPECT_EQ(cluster.clusterNodeOf(nodes * stride + nodes), -1);
}

TEST(Cluster, GpuSetIsNodeMajor)
{
    const hw::Platform plat = makePlatform("dgx1v");
    const hw::Cluster cluster = makeCluster(plat, 2, "ib100");
    const std::vector<hw::NodeId> one = plat.topology.gpuSet(2);
    const std::vector<hw::NodeId> set = cluster.gpuSet(2);
    ASSERT_EQ(set.size(), 4u);
    // First the first two GPUs of node 0, then node 1's replicas.
    EXPECT_EQ(set[0], one[0]);
    EXPECT_EQ(set[1], one[1]);
    EXPECT_EQ(set[2], one[0] + cluster.nodeStride);
    EXPECT_EQ(set[3], one[1] + cluster.nodeStride);
    EXPECT_THROW(cluster.gpuSet(0), sim::FatalError);
    EXPECT_THROW(cluster.gpuSet(cluster.gpusPerNode + 1),
                 sim::FatalError);
}

TEST(Cluster, CrossNodeRoutesUseTheInterNodeFabric)
{
    const hw::Platform plat = makePlatform("dgx1v");
    const hw::Cluster cluster = makeCluster(plat, 2, "ib100");
    const std::vector<hw::NodeId> gpus = cluster.gpuSet(1);
    const hw::Route route =
        cluster.topology.findRoute(gpus[0], gpus[1]);
    EXPECT_EQ(route.kind, hw::RouteKind::InterNode);
    // The route crosses exactly two IB hops (NIC->switch->NIC).
    int ib_hops = 0;
    for (const hw::RouteLeg &leg : route.legs) {
        if (cluster.topology.links()[leg.linkIndex].type ==
            hw::LinkType::IB)
            ++ib_hops;
    }
    EXPECT_EQ(ib_hops, 2);
    // Intra-node routes are untouched by the cluster build.
    const std::vector<hw::NodeId> intra = cluster.gpuSet(2);
    EXPECT_EQ(cluster.topology.findRoute(intra[0], intra[1]).kind,
              plat.topology.findRoute(intra[0], intra[1]).kind);
}

TEST(Cluster, IbBandwidthScalingIsBaseRelative)
{
    const hw::Platform plat = makePlatform("dgx1v");
    sim::EventQueue queue;
    hw::Fabric fabric(queue, makeCluster(plat, 2, "ib100").topology,
                      plat.hostSpec);
    const auto ibGbps = [&fabric]() {
        for (const hw::Link &link : fabric.topology().links()) {
            if (link.type == hw::LinkType::IB)
                return link.gbpsPerLane * link.lanes;
        }
        return 0.0;
    };
    const double base = ibGbps();
    ASSERT_GT(base, 0.0);
    fabric.scaleIbBandwidth(2.0);
    EXPECT_DOUBLE_EQ(ibGbps(), 2.0 * base);
    // Base-relative: repeated scales replace, never compound.
    fabric.scaleIbBandwidth(2.0);
    EXPECT_DOUBLE_EQ(ibGbps(), 2.0 * base);
    fabric.scaleIbBandwidth(1.0);
    EXPECT_DOUBLE_EQ(ibGbps(), base);
}

TEST(Cluster, BadArgumentsAreFatal)
{
    const hw::Platform plat = makePlatform("dgx1v");
    EXPECT_THROW(makeCluster(plat, 0, "ib100"), sim::FatalError);
    EXPECT_THROW(makeCluster(plat, 2, "omnipath"), sim::FatalError);
}

} // namespace
