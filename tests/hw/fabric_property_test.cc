/**
 * @file
 * Property tests over the DGX-1 fabric: bandwidth symmetry, route
 * sanity for every pair, and behavior under heavy concurrent load.
 */

#include <gtest/gtest.h>

#include "hw/fabric.hh"
#include "sim/event_queue.hh"

namespace {

using namespace dgxsim;
using namespace dgxsim::hw;

double
transferSecs(Fabric &fabric, sim::EventQueue &q, NodeId a, NodeId b,
             sim::Bytes bytes)
{
    const sim::Tick start = q.now();
    sim::Tick end = 0;
    fabric.transfer(a, b, bytes, [&] { end = q.now(); });
    q.run();
    return sim::ticksToSec(end - start);
}

/** Sweep every ordered GPU pair. */
class PairSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PairSweep, TransferTimeIsSymmetric)
{
    const auto [a, b] = GetParam();
    if (a == b)
        return;
    sim::EventQueue q1, q2;
    Fabric f1(q1, Topology::dgx1Volta());
    Fabric f2(q2, Topology::dgx1Volta());
    const sim::Bytes bytes = 64u << 20;
    const double fwd = transferSecs(f1, q1, a, b, bytes);
    const double rev = transferSecs(f2, q2, b, a, bytes);
    EXPECT_NEAR(fwd, rev, 1e-6) << a << "<->" << b;
}

TEST_P(PairSweep, BandwidthMatchesRouteBottleneckWithinStaging)
{
    const auto [a, b] = GetParam();
    if (a == b)
        return;
    sim::EventQueue q;
    Fabric fabric(q, Topology::dgx1Volta());
    const Topology &topo = fabric.topology();
    const sim::Bytes bytes = 128u << 20;
    const double secs = transferSecs(fabric, q, a, b, bytes);
    // Store-and-forward: the legs run back to back, so the expected
    // time is the sum of per-leg transfer times.
    double expected = 0;
    for (const RouteLeg &leg : topo.findRoute(a, b).legs) {
        expected += static_cast<double>(bytes) /
                    (topo.links()[leg.linkIndex].gbpsPerDir() * 1e9);
    }
    EXPECT_NEAR(secs, expected, 0.02 * expected) << a << ">" << b;
}

INSTANTIATE_TEST_SUITE_P(
    AllGpuPairs, PairSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(0, 3, 4, 7)));

TEST(FabricLoadTest, AllToAllCompletesAndSharesFairly)
{
    sim::EventQueue q;
    Fabric fabric(q, Topology::dgx1Volta());
    int done = 0;
    const sim::Bytes bytes = 8u << 20;
    for (NodeId a = 0; a < 8; ++a) {
        for (NodeId b = 0; b < 8; ++b) {
            if (a != b)
                fabric.transfer(a, b, bytes, [&] { ++done; });
        }
    }
    q.run();
    EXPECT_EQ(done, 56);
    // Aggregate goodput: 56 x 8 MiB over the elapsed window should
    // exceed what a single link could carry alone.
    EXPECT_LT(sim::ticksToSec(q.now()), 0.05);
}

TEST(FabricLoadTest, RepeatedTransfersAccumulateLinkCounters)
{
    sim::EventQueue q;
    Fabric fabric(q, Topology::dgx1Volta());
    auto link = fabric.topology().directLink(0, 1, LinkType::NVLink);
    ASSERT_TRUE(link.has_value());
    for (int i = 0; i < 10; ++i)
        fabric.transfer(0, 1, 1 << 20, nullptr);
    q.run();
    EXPECT_NEAR(fabric.linkBytesMoved(*link), 10.0 * (1 << 20), 16.0);
    EXPECT_EQ(fabric.records().size(), 10u);
}

TEST(FabricLoadTest, StagedTransferChargesBothLegs)
{
    sim::EventQueue q;
    Fabric fabric(q, Topology::dgx1Volta());
    const Route route = fabric.topology().findRoute(3, 4);
    ASSERT_EQ(route.kind, RouteKind::StagedNvlink);
    fabric.transfer(3, 4, 1 << 20, nullptr);
    q.run();
    for (const RouteLeg &leg : route.legs) {
        EXPECT_NEAR(fabric.linkBytesMoved(leg.linkIndex),
                    static_cast<double>(1 << 20), 4.0);
    }
}

TEST(FabricLoadTest, OppositeRingDirectionsAreIndependent)
{
    // Clockwise and counter-clockwise ring traffic share no channel.
    sim::EventQueue q;
    Fabric fabric(q, Topology::dgx1Volta());
    sim::Tick cw = 0, ccw = 0;
    const sim::Bytes bytes = 50u * 1000 * 1000;
    fabric.transfer(0, 1, bytes, [&] { cw = q.now(); });
    fabric.transfer(1, 0, bytes, [&] { ccw = q.now(); });
    q.run();
    EXPECT_NEAR(static_cast<double>(cw), static_cast<double>(ccw),
                1e6);
    // Each direction at full 50 GB/s: ~1 ms, not ~2 ms.
    EXPECT_LT(sim::ticksToMs(cw), 1.2);
}

} // namespace
