/**
 * @file
 * Tests for the Fabric transfer engine: timing of direct, staged and
 * host-routed copies, bandwidth sharing, and ablation hooks.
 */

#include <gtest/gtest.h>

#include "hw/fabric.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using namespace dgxsim::hw;
using dgxsim::sim::operator""_GiB;

class FabricTest : public ::testing::Test
{
  protected:
    sim::EventQueue queue;
    Fabric fabric{queue, Topology::dgx1Volta()};

    /** Run a transfer to completion; @return elapsed seconds. */
    double
    timedTransfer(NodeId src, NodeId dst, sim::Bytes bytes)
    {
        const sim::Tick start = queue.now();
        sim::Tick end = 0;
        fabric.transfer(src, dst, bytes, [&] { end = queue.now(); });
        queue.run();
        return sim::ticksToSec(end - start);
    }
};

TEST_F(FabricTest, LoopbackIsInstant)
{
    EXPECT_DOUBLE_EQ(timedTransfer(2, 2, 1_GiB), 0.0);
}

TEST_F(FabricTest, DirectSingleLaneTransferMatchesBandwidth)
{
    // 250 MB over a single 25 GB/s NVLink: 10 ms + ~1 us latency.
    const double secs = timedTransfer(0, 3, 250u * 1000 * 1000);
    EXPECT_NEAR(secs, 0.010, 0.0001);
}

TEST_F(FabricTest, DualLaneLinkIsTwiceAsFast)
{
    const double single = timedTransfer(0, 3, 250u * 1000 * 1000);
    const double dual = timedTransfer(0, 1, 250u * 1000 * 1000);
    EXPECT_NEAR(single / dual, 2.0, 0.01);
}

TEST_F(FabricTest, StagedTransferTakesRoughlyTwiceDirect)
{
    // 0->7 has no direct link; store-and-forward over two hops.
    const sim::Bytes payload = 250u * 1000 * 1000;
    const double direct = timedTransfer(0, 6, payload);
    const double staged = timedTransfer(0, 7, payload);
    EXPECT_GT(staged, 1.5 * direct);
    EXPECT_LT(staged, 2.5 * direct);
}

TEST_F(FabricTest, TransferRecordsCaptureRouteKind)
{
    fabric.transfer(0, 7, 1000, [] {});
    queue.run();
    ASSERT_EQ(fabric.records().size(), 1u);
    EXPECT_EQ(fabric.records()[0].kind, RouteKind::StagedNvlink);
    EXPECT_EQ(fabric.records()[0].src, 0);
    EXPECT_EQ(fabric.records()[0].dst, 7);
    fabric.clearRecords();
    EXPECT_TRUE(fabric.records().empty());
}

TEST_F(FabricTest, ConcurrentTransfersOnOneLinkShareBandwidth)
{
    const sim::Bytes payload = 100u * 1000 * 1000;
    sim::Tick end1 = 0, end2 = 0;
    fabric.transfer(0, 3, payload, [&] { end1 = queue.now(); });
    fabric.transfer(0, 3, payload, [&] { end2 = queue.now(); });
    queue.run();
    // Two flows on one 25 GB/s direction: each ~8 ms instead of 4.
    EXPECT_NEAR(sim::ticksToSec(end1), 0.008, 0.0005);
    EXPECT_NEAR(sim::ticksToSec(end2), 0.008, 0.0005);
}

TEST_F(FabricTest, OppositeDirectionsDoNotContend)
{
    const sim::Bytes payload = 100u * 1000 * 1000;
    sim::Tick end1 = 0, end2 = 0;
    fabric.transfer(0, 3, payload, [&] { end1 = queue.now(); });
    fabric.transfer(3, 0, payload, [&] { end2 = queue.now(); });
    queue.run();
    EXPECT_NEAR(sim::ticksToSec(end1), 0.004, 0.0005);
    EXPECT_NEAR(sim::ticksToSec(end2), 0.004, 0.0005);
}

TEST_F(FabricTest, HostRouteIsSlowerThanNvlink)
{
    sim::EventQueue q2;
    Fabric pcie(q2, Topology::pcieOnly8Gpu());
    const sim::Bytes payload = 100u * 1000 * 1000;
    sim::Tick end = 0;
    pcie.transfer(0, 1, payload, [&] { end = q2.now(); });
    q2.run();
    const double pcie_secs = sim::ticksToSec(end);
    const double nvlink_secs = timedTransfer(0, 1, payload);
    EXPECT_GT(pcie_secs, 3.0 * nvlink_secs);
}

TEST_F(FabricTest, TransferDirectRequiresNeighbors)
{
    sim::Tick end = 0;
    fabric.transferDirect(0, 6, 25u * 1000 * 1000,
                          [&] { end = queue.now(); });
    queue.run();
    EXPECT_NEAR(sim::ticksToSec(end), 0.001, 0.0001);
    EXPECT_THROW(fabric.transferDirect(0, 7, 100, [] {}),
                 dgxsim::sim::FatalError);
}

TEST_F(FabricTest, ScaleNvlinkBandwidthSpeedsUpLiveFabric)
{
    const sim::Bytes payload = 250u * 1000 * 1000;
    const double before = timedTransfer(0, 3, payload);
    fabric.scaleNvlinkBandwidth(4.0);
    const double after = timedTransfer(0, 3, payload);
    EXPECT_NEAR(before / after, 4.0, 0.05);
}

TEST_F(FabricTest, LinkBytesMovedAccumulates)
{
    auto link = fabric.topology().directLink(0, 3, LinkType::NVLink);
    ASSERT_TRUE(link.has_value());
    timedTransfer(0, 3, 1000);
    timedTransfer(3, 0, 500);
    EXPECT_NEAR(fabric.linkBytesMoved(*link), 1500.0, 2.0);
}

TEST_F(FabricTest, ZeroByteTransferCompletesAfterLatency)
{
    sim::Tick end = 0;
    fabric.transfer(0, 3, 0, [&] { end = queue.now(); });
    queue.run();
    EXPECT_GT(end, 0u);
    EXPECT_LE(sim::ticksToUs(end), 5.0);
}

} // namespace
