/**
 * @file
 * Platform registry tests: the registered names, bit-exactness of the
 * default platform against the hand-built DGX-1 topology, the DGX-2
 * NVSwitch fabric's structure and routes, and base-relative bandwidth
 * scaling (repeated scales must not compound).
 */

#include <gtest/gtest.h>

#include "hw/platform.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using hw::makePlatform;

TEST(Platform, RegistryListsTheKnownMachines)
{
    EXPECT_EQ(hw::platformNames(),
              (std::vector<std::string>{"dgx1v", "dgx1p",
                                        "dgx1v-uniform", "pcie8",
                                        "dgx2"}));
    for (const std::string &name : hw::platformNames()) {
        EXPECT_TRUE(hw::isPlatform(name)) << name;
        EXPECT_EQ(makePlatform(name).name, name);
    }
    EXPECT_FALSE(hw::isPlatform("dgx3"));
    EXPECT_EQ(std::string(hw::kDefaultPlatform), "dgx1v");
}

TEST(Platform, UnknownNameIsFatal)
{
    EXPECT_THROW(makePlatform("summit"), sim::FatalError);
    EXPECT_THROW(makePlatform(""), sim::FatalError);
}

TEST(Platform, DefaultPlatformMatchesTheHandBuiltDgx1)
{
    // The determinism digest folds per-link traffic in link-index
    // order, so the registry's dgx1v must reproduce dgx1Volta()
    // link-for-link — same order, same fields.
    const hw::Platform plat = makePlatform("dgx1v");
    const hw::Topology ref = hw::Topology::dgx1Volta();
    ASSERT_EQ(plat.topology.links().size(), ref.links().size());
    for (std::size_t i = 0; i < ref.links().size(); ++i) {
        const hw::Link &a = plat.topology.links()[i];
        const hw::Link &b = ref.links()[i];
        EXPECT_EQ(a.a, b.a) << "link " << i;
        EXPECT_EQ(a.b, b.b) << "link " << i;
        EXPECT_EQ(a.type, b.type) << "link " << i;
        EXPECT_EQ(a.lanes, b.lanes) << "link " << i;
        EXPECT_DOUBLE_EQ(a.gbpsPerLane, b.gbpsPerLane) << "link " << i;
        EXPECT_DOUBLE_EQ(a.latencyUs, b.latencyUs) << "link " << i;
    }
    EXPECT_EQ(plat.gpuSpec, hw::GpuSpec::voltaV100());
    EXPECT_EQ(plat.hostSpec, hw::HostSpec::xeonE52698v4());
}

TEST(Platform, Dgx1pIsTheVoltaMeshWithPascalGpus)
{
    const hw::Platform plat = makePlatform("dgx1p");
    EXPECT_EQ(plat.gpuSpec, hw::GpuSpec::pascalP100());
    EXPECT_EQ(plat.topology.links().size(),
              hw::Topology::dgx1Volta().links().size());
}

TEST(Platform, Dgx2HasSixteenGpusBehindSwitches)
{
    const hw::Topology topo = makePlatform("dgx2").topology;
    EXPECT_EQ(topo.numGpus(), 16);
    // No direct GPU-GPU NVLinks: every brick lands on a switch.
    for (const hw::Link &link : topo.links()) {
        if (link.type != hw::LinkType::NVLink)
            continue;
        EXPECT_TRUE(topo.nodeKind(link.a) == hw::NodeKind::Switch ||
                    topo.nodeKind(link.b) == hw::NodeKind::Switch);
    }
    // Yet every pair is NVLink-connected through the crossbar.
    for (hw::NodeId a = 0; a < 16; ++a)
        for (hw::NodeId b = a + 1; b < 16; ++b)
            EXPECT_TRUE(topo.nvlinkConnected(a, b))
                << a << "-" << b;
}

TEST(Platform, Dgx2RoutesTraverseTheCrossbar)
{
    const hw::Topology topo = makePlatform("dgx2").topology;
    // Same baseboard: GPU -> NVS0 -> GPU, two legs.
    const hw::Route same = topo.findRoute(0, 1);
    EXPECT_EQ(same.kind, hw::RouteKind::SwitchNvlink);
    EXPECT_EQ(same.legs.size(), 2u);
    // Cross-board: GPU -> NVS0 -> NVS1 -> GPU, three legs, still at
    // the full 6-brick rate (the 48-lane trunk is not the bottleneck).
    const hw::Route cross = topo.findRoute(0, 15);
    EXPECT_EQ(cross.kind, hw::RouteKind::SwitchNvlink);
    EXPECT_EQ(cross.legs.size(), 3u);
    EXPECT_DOUBLE_EQ(topo.routeBandwidthGbps(0, 1), 150.0);
    EXPECT_DOUBLE_EQ(topo.routeBandwidthGbps(0, 15), 150.0);
}

TEST(Platform, Pcie8RoutesAreHostStaged)
{
    const hw::Topology topo = makePlatform("pcie8").topology;
    EXPECT_EQ(topo.findRoute(0, 1).kind, hw::RouteKind::HostPcie);
    EXPECT_FALSE(topo.nvlinkConnected(0, 1));
}

TEST(Platform, NvlinkScalingIsBaseRelative)
{
    hw::Topology topo = makePlatform("dgx1v").topology;
    const double base = topo.links()[0].gbpsPerLane;
    topo.scaleNvlinkBandwidth(2.0);
    topo.scaleNvlinkBandwidth(2.0);
    // Repeating the same factor is idempotent: the scale applies to
    // the construction-time bandwidth, not the current value.
    EXPECT_DOUBLE_EQ(topo.links()[0].gbpsPerLane, 2.0 * base);
    topo.scaleNvlinkBandwidth(0.5);
    EXPECT_DOUBLE_EQ(topo.links()[0].gbpsPerLane, 0.5 * base);
    topo.scaleNvlinkBandwidth(1.0);
    EXPECT_DOUBLE_EQ(topo.links()[0].gbpsPerLane, base);
}

TEST(Platform, PerLinkScalingIsBaseRelativeToo)
{
    hw::Topology topo = makePlatform("dgx1v").topology;
    const double base = topo.links()[3].gbpsPerLane;
    topo.scaleLinkBandwidth(3, 0.5);
    topo.scaleLinkBandwidth(3, 0.5);
    EXPECT_DOUBLE_EQ(topo.links()[3].gbpsPerLane, 0.5 * base);
    // And the global NVLink scale composes from the same base, so the
    // two entry points cannot double-apply each other's factor.
    topo.scaleNvlinkBandwidth(4.0);
    EXPECT_DOUBLE_EQ(topo.links()[3].gbpsPerLane, 4.0 * base);
}

} // namespace
