/**
 * @file
 * Tests for CUDA-stream semantics: in-order execution, cross-stream
 * event synchronization, drain notification, and copy integration.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cuda/stream.hh"
#include "hw/fabric.hh"
#include "sim/event_queue.hh"

namespace {

using namespace dgxsim;
using cuda::CudaEvent;
using cuda::Stream;

class StreamTest : public ::testing::Test
{
  protected:
    sim::EventQueue queue;
    profiling::Profiler prof;
};

TEST_F(StreamTest, KernelsRunInOrder)
{
    Stream s(queue, &prof, 0, "s0");
    s.enqueueKernel("a", 100);
    s.enqueueKernel("b", 50);
    s.enqueueKernel("c", 25);
    queue.run();
    ASSERT_EQ(prof.kernels().size(), 3u);
    EXPECT_EQ(prof.kernels()[0].name, "a");
    EXPECT_EQ(prof.kernels()[0].start, 0u);
    EXPECT_EQ(prof.kernels()[0].end, 100u);
    EXPECT_EQ(prof.kernels()[1].name, "b");
    EXPECT_EQ(prof.kernels()[1].start, 100u);
    EXPECT_EQ(prof.kernels()[2].end, 175u);
    EXPECT_EQ(s.kernelBusyTicks(), 175u);
}

TEST_F(StreamTest, DistinctStreamsRunConcurrently)
{
    Stream s0(queue, &prof, 0, "s0");
    Stream s1(queue, &prof, 1, "s1");
    s0.enqueueKernel("k0", 1000);
    s1.enqueueKernel("k1", 1000);
    queue.run();
    EXPECT_EQ(queue.now(), 1000u);
}

TEST_F(StreamTest, DrainedReflectsState)
{
    Stream s(queue, &prof, 0, "s0");
    EXPECT_TRUE(s.drained());
    s.enqueueKernel("k", 10);
    EXPECT_FALSE(s.drained());
    queue.run();
    EXPECT_TRUE(s.drained());
}

TEST_F(StreamTest, NotifyDrainedFiresWhenQueueEmpties)
{
    Stream s(queue, &prof, 0, "s0");
    s.enqueueKernel("k", 100);
    sim::Tick drained_at = 0;
    s.notifyDrained([&] { drained_at = queue.now(); });
    queue.run();
    EXPECT_EQ(drained_at, 100u);
}

TEST_F(StreamTest, NotifyDrainedFiresImmediatelyWhenIdle)
{
    Stream s(queue, &prof, 0, "s0");
    bool fired = false;
    s.notifyDrained([&] { fired = true; });
    EXPECT_TRUE(fired);
}

TEST_F(StreamTest, EventSynchronizesTwoStreams)
{
    Stream producer(queue, &prof, 0, "p");
    Stream consumer(queue, &prof, 1, "c");
    auto evt = std::make_shared<CudaEvent>();
    producer.enqueueKernel("produce", 500);
    producer.enqueueSignal(evt);
    consumer.enqueueWait(evt);
    consumer.enqueueKernel("consume", 100);
    queue.run();
    ASSERT_EQ(prof.kernels().size(), 2u);
    const auto &consume = prof.kernels()[1];
    EXPECT_EQ(consume.name, "consume");
    EXPECT_EQ(consume.start, 500u);
    EXPECT_EQ(consume.end, 600u);
}

TEST_F(StreamTest, WaitOnAlreadySignaledEventDoesNotBlock)
{
    Stream s(queue, &prof, 0, "s0");
    auto evt = std::make_shared<CudaEvent>();
    evt->signal();
    s.enqueueWait(evt);
    s.enqueueKernel("k", 10);
    queue.run();
    EXPECT_EQ(prof.kernels()[0].start, 0u);
}

TEST_F(StreamTest, HostFnRunsInStreamOrder)
{
    Stream s(queue, &prof, 0, "s0");
    std::vector<int> order;
    s.enqueueKernel("k1", 100);
    s.enqueueHostFn([&] { order.push_back(1); });
    s.enqueueKernel("k2", 100);
    s.enqueueHostFn([&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(StreamTest, CopyOccupiesStreamUntilDelivery)
{
    hw::Fabric fabric(queue, hw::Topology::dgx1Volta());
    Stream s(queue, &prof, 0, "s0");
    s.enqueueCopy(fabric, "PtoP", 0, 3, 25u * 1000 * 1000);
    s.enqueueKernel("after-copy", 100);
    queue.run();
    ASSERT_EQ(prof.kernels().size(), 1u);
    // 25 MB over 25 GB/s == 1 ms (+1 us latency); kernel starts after.
    EXPECT_NEAR(sim::ticksToMs(prof.kernels()[0].start), 1.0, 0.01);
    ASSERT_EQ(prof.copies().size(), 1u);
    EXPECT_EQ(prof.copies()[0].kind, "PtoP");
    EXPECT_EQ(prof.copies()[0].bytes, 25u * 1000 * 1000);
}

TEST_F(StreamTest, ChainedEventsAcrossThreeStreams)
{
    Stream a(queue, &prof, 0, "a");
    Stream b(queue, &prof, 1, "b");
    Stream c(queue, &prof, 2, "c");
    auto e1 = std::make_shared<CudaEvent>();
    auto e2 = std::make_shared<CudaEvent>();
    a.enqueueKernel("ka", 100);
    a.enqueueSignal(e1);
    b.enqueueWait(e1);
    b.enqueueKernel("kb", 100);
    b.enqueueSignal(e2);
    c.enqueueWait(e2);
    c.enqueueKernel("kc", 100);
    queue.run();
    EXPECT_EQ(queue.now(), 300u);
}

TEST_F(StreamTest, WorksWithoutProfiler)
{
    Stream s(queue, nullptr, 0, "s0");
    s.enqueueKernel("k", 100);
    queue.run();
    EXPECT_EQ(queue.now(), 100u);
}

} // namespace
