/**
 * @file
 * Tests for the analytical kernel-duration model: roofline behavior,
 * occupancy saturation, and tensor-core speedups.
 */

#include <gtest/gtest.h>

#include "cuda/kernel_model.hh"

namespace {

using namespace dgxsim;
using cuda::KernelCost;
using cuda::kernelDuration;

class KernelModelTest : public ::testing::Test
{
  protected:
    hw::GpuSpec v100 = hw::GpuSpec::voltaV100();
};

TEST_F(KernelModelTest, EmptyKernelCostsOnlyTail)
{
    EXPECT_EQ(kernelDuration(v100, {}),
              sim::usToTicks(v100.kernelTailUs));
}

TEST_F(KernelModelTest, DurationIncreasesWithFlops)
{
    KernelCost small{1e8, 0, false};
    KernelCost large{1e9, 0, false};
    EXPECT_LT(kernelDuration(v100, small), kernelDuration(v100, large));
}

TEST_F(KernelModelTest, LargeKernelApproachesPeakEfficiency)
{
    // A saturating kernel should run within 2x of effMax-scaled peak.
    KernelCost huge{1e13, 0, false};
    const double secs = sim::ticksToSec(kernelDuration(v100, huge));
    const double ideal = 1e13 / (v100.fp32Tflops * 1e12 * v100.effMax);
    EXPECT_LT(secs, 1.3 * ideal);
    EXPECT_GE(secs, ideal);
}

TEST_F(KernelModelTest, SmallKernelsRunFarFromPeak)
{
    // Per-image efficiency should grow with batch: doubling work less
    // than doubles duration for an unsaturated kernel.
    KernelCost b1{1e7, 0, false};
    KernelCost b2{2e7, 0, false};
    const auto d1 = kernelDuration(v100, b1);
    const auto d2 = kernelDuration(v100, b2);
    EXPECT_LT(d2, 2 * d1);
    EXPECT_GT(d2, d1);
}

TEST_F(KernelModelTest, MemoryBoundKernelLimitedByHbm)
{
    // 9 GB of traffic at 900 GB/s == 10 ms regardless of tiny flops.
    KernelCost copy{1e3, 9e9, false};
    const double ms = sim::ticksToMs(kernelDuration(v100, copy));
    EXPECT_NEAR(ms, 10.0, 0.1);
}

TEST_F(KernelModelTest, TensorCoresSpeedUpLargeGemms)
{
    KernelCost gemm{1e12, 0, false};
    KernelCost gemm_tc{1e12, 0, true};
    const auto fp32 = kernelDuration(v100, gemm);
    const auto tc = kernelDuration(v100, gemm_tc);
    EXPECT_LT(tc, fp32);
    // The paper quotes ~7x peak ratio; with saturation effects the
    // realized gain on a large GEMM should still be substantial.
    EXPECT_GT(static_cast<double>(fp32) / static_cast<double>(tc), 3.0);
}

TEST_F(KernelModelTest, TensorCoresDoNotHelpTinyKernels)
{
    // A tiny kernel is dominated by the tail + low occupancy, so the
    // tensor-core advantage should mostly vanish.
    KernelCost tiny{1e6, 0, false};
    KernelCost tiny_tc{1e6, 0, true};
    const auto fp32 = kernelDuration(v100, tiny);
    const auto tc = kernelDuration(v100, tiny_tc);
    const double ratio =
        static_cast<double>(fp32) / static_cast<double>(tc);
    EXPECT_LT(ratio, 1.6);
}

TEST_F(KernelModelTest, MonotoneInFlops)
{
    sim::Tick prev = 0;
    for (double flops = 1e6; flops < 1e13; flops *= 3.7) {
        const sim::Tick d = kernelDuration(v100, {flops, 0, false});
        EXPECT_GE(d, prev);
        prev = d;
    }
}

TEST_F(KernelModelTest, V100FasterThanP100)
{
    const hw::GpuSpec p100 = hw::GpuSpec::pascalP100();
    KernelCost work{1e11, 1e8, true};
    EXPECT_LT(kernelDuration(v100, work), kernelDuration(p100, work));
}

} // namespace
