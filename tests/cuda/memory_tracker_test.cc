/**
 * @file
 * Tests for per-device memory accounting and out-of-memory behavior.
 */

#include <gtest/gtest.h>

#include "cuda/device.hh"
#include "cuda/memory_tracker.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using cuda::MemCategory;
using cuda::MemoryTracker;

TEST(MemoryTrackerTest, AllocAndFreeBalance)
{
    MemoryTracker mem(1000);
    mem.alloc(MemCategory::Weights, 400);
    mem.alloc(MemCategory::Activations, 300);
    EXPECT_EQ(mem.used(), 700u);
    EXPECT_EQ(mem.usedBy(MemCategory::Weights), 400u);
    EXPECT_EQ(mem.headroom(), 300u);
    mem.free(MemCategory::Weights, 400);
    EXPECT_EQ(mem.used(), 300u);
    EXPECT_EQ(mem.usedBy(MemCategory::Weights), 0u);
}

TEST(MemoryTrackerTest, PeakTracksHighWater)
{
    MemoryTracker mem(1000);
    mem.alloc(MemCategory::Workspace, 800);
    mem.free(MemCategory::Workspace, 700);
    mem.alloc(MemCategory::Weights, 100);
    EXPECT_EQ(mem.peak(), 800u);
    EXPECT_EQ(mem.used(), 200u);
}

TEST(MemoryTrackerTest, OverCapacityThrowsFatal)
{
    MemoryTracker mem(1000);
    mem.alloc(MemCategory::Weights, 900);
    EXPECT_THROW(mem.alloc(MemCategory::Activations, 200),
                 sim::FatalError);
    // Failed allocation must not change accounting.
    EXPECT_EQ(mem.used(), 900u);
}

TEST(MemoryTrackerTest, FreeAllClearsOneCategoryOnly)
{
    MemoryTracker mem(1000);
    mem.alloc(MemCategory::Activations, 500);
    mem.alloc(MemCategory::Weights, 100);
    mem.freeAll(MemCategory::Activations);
    EXPECT_EQ(mem.used(), 100u);
    EXPECT_EQ(mem.usedBy(MemCategory::Activations), 0u);
    EXPECT_EQ(mem.usedBy(MemCategory::Weights), 100u);
}

TEST(MemoryTrackerTest, CategoryNamesArePrintable)
{
    EXPECT_STREQ(cuda::memCategoryName(MemCategory::Weights), "weights");
    EXPECT_STREQ(cuda::memCategoryName(MemCategory::CommBuffers),
                 "comm-buffers");
    EXPECT_STREQ(cuda::memCategoryName(MemCategory::Context), "context");
}

TEST(DeviceTest, DeviceOwnsSpecAndMemory)
{
    cuda::Device dev(3, hw::GpuSpec::voltaV100());
    EXPECT_EQ(dev.node(), 3);
    EXPECT_EQ(dev.spec().numSms, 80);
    EXPECT_EQ(dev.mem().capacity(), sim::Bytes(16) << 30);
    dev.mem().alloc(MemCategory::Context, 1 << 20);
    EXPECT_EQ(dev.mem().used(), sim::Bytes(1) << 20);
}

TEST(GpuSpecTest, V100MatchesPublishedNumbers)
{
    const hw::GpuSpec v100 = hw::GpuSpec::voltaV100();
    EXPECT_EQ(v100.numSms, 80);
    EXPECT_NEAR(v100.fp32Tflops, 15.7, 0.1);
    EXPECT_NEAR(v100.tensorTflops, 125.0, 0.1);
    EXPECT_NEAR(v100.memBwGBps, 900.0, 1.0);
    // Peak flops per tick == TFLOPs numerically (1e12 / 1e12).
    EXPECT_DOUBLE_EQ(v100.peakFlopsPerTick(false), v100.fp32Tflops);
    EXPECT_DOUBLE_EQ(v100.peakFlopsPerTick(true), v100.tensorTflops);
}

TEST(GpuSpecTest, P100HasNoTensorCores)
{
    const hw::GpuSpec p100 = hw::GpuSpec::pascalP100();
    EXPECT_DOUBLE_EQ(p100.tensorTflops, 0.0);
    // Requesting tensor math falls back to fp32 peak.
    EXPECT_DOUBLE_EQ(p100.peakFlopsPerTick(true), p100.fp32Tflops);
}

} // namespace
