/**
 * @file
 * Tests for the host API-issuing thread: serialization, overhead
 * accounting, and blocking-synchronization attribution (the mechanism
 * behind the paper's Table III).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cuda/host_thread.hh"
#include "cuda/stream.hh"
#include "sim/event_queue.hh"

namespace {

using namespace dgxsim;
using cuda::CudaEvent;
using cuda::HostThread;
using cuda::Stream;

class HostThreadTest : public ::testing::Test
{
  protected:
    sim::EventQueue queue;
    profiling::Profiler prof;
};

TEST_F(HostThreadTest, CallsSerializeAndChargeOverhead)
{
    HostThread t(queue, &prof, "worker0");
    int done = 0;
    t.call("apiA", 100, [&] { ++done; });
    t.call("apiB", 50, [&] { ++done; });
    queue.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(queue.now(), 150u);
    EXPECT_EQ(t.apiBusyTicks(), 150u);
    ASSERT_EQ(prof.apis().size(), 2u);
    EXPECT_EQ(prof.apis()[0].name, "apiA");
    EXPECT_EQ(prof.apis()[0].duration(), 100u);
    EXPECT_EQ(prof.apis()[1].start, 100u);
}

TEST_F(HostThreadTest, SyncStreamBlocksUntilDrain)
{
    HostThread t(queue, &prof, "worker0");
    Stream s(queue, &prof, 0, "s0");
    // Launch a 10'000-tick kernel via the thread (100-tick API), then
    // synchronize (50-tick entry cost + blocked time).
    t.call("cudaLaunchKernel", 100,
           [&] { s.enqueueKernel("k", 10000); });
    t.syncStream(s, 50);
    bool after_sync = false;
    t.call("post", 10, [&] { after_sync = true; });
    queue.run();
    EXPECT_TRUE(after_sync);
    // Kernel starts at 100, ends at 10100; sync spans 100..10100.
    const sim::Tick sync_time = prof.apiTime("cudaStreamSynchronize");
    EXPECT_EQ(sync_time, 10000u);
    EXPECT_EQ(queue.now(), 10110u);
}

TEST_F(HostThreadTest, SyncOnDrainedStreamCostsOnlyOverhead)
{
    HostThread t(queue, &prof, "worker0");
    Stream s(queue, &prof, 0, "s0");
    t.syncStream(s, 50);
    queue.run();
    EXPECT_EQ(prof.apiTime("cudaStreamSynchronize"), 50u);
}

TEST_F(HostThreadTest, SyncEventBlocksUntilSignal)
{
    HostThread t(queue, &prof, "worker0");
    auto evt = std::make_shared<CudaEvent>();
    t.syncEvent(evt, 10, "cudaEventSynchronize");
    queue.schedule(5000, [&] { evt->signal(); });
    queue.run();
    EXPECT_EQ(prof.apiTime("cudaEventSynchronize"), 5000u);
}

TEST_F(HostThreadTest, PostActionsHaveZeroCost)
{
    HostThread t(queue, &prof, "worker0");
    bool ran = false;
    t.post([&] { ran = true; });
    queue.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(queue.now(), 0u);
    EXPECT_TRUE(prof.apis().empty());
}

TEST_F(HostThreadTest, OnIdleFiresWhenQueueDrains)
{
    HostThread t(queue, &prof, "worker0");
    sim::Tick idle_at = 0;
    t.call("api", 100);
    t.onIdle([&] { idle_at = queue.now(); });
    queue.run();
    EXPECT_EQ(idle_at, 100u);
}

TEST_F(HostThreadTest, OnIdleFiresImmediatelyWhenIdle)
{
    HostThread t(queue, &prof, "worker0");
    bool fired = false;
    t.onIdle([&] { fired = true; });
    EXPECT_TRUE(fired);
}

TEST_F(HostThreadTest, TwoThreadsProgressConcurrently)
{
    HostThread t0(queue, &prof, "w0");
    HostThread t1(queue, &prof, "w1");
    t0.call("a", 1000);
    t1.call("b", 1000);
    queue.run();
    EXPECT_EQ(queue.now(), 1000u);
    EXPECT_EQ(t0.apiBusyTicks(), 1000u);
    EXPECT_EQ(t1.apiBusyTicks(), 1000u);
}

TEST_F(HostThreadTest, PipelinedLaunchesOverlapKernelAndApi)
{
    // The host can launch kernel N+1 while kernel N executes; total
    // time is launch + sum(kernels), not sum(launch + kernel).
    HostThread t(queue, &prof, "w0");
    Stream s(queue, &prof, 0, "s0");
    for (int i = 0; i < 5; ++i)
        t.call("cudaLaunchKernel", 100,
               [&] { s.enqueueKernel("k", 1000); });
    t.syncStream(s, 10);
    queue.run();
    // First kernel starts at 100; kernels run back to back, so the
    // stream drains at 100 + 5000 and the sync returns then.
    EXPECT_EQ(queue.now(), 5100u);
}

} // namespace
