/**
 * @file
 * Tests for the chrome://tracing export.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/trainer.hh"
#include "profiling/profiler.hh"

namespace {

using namespace dgxsim;
using profiling::Profiler;

TEST(ChromeTraceTest, EmitsCompleteEvents)
{
    Profiler p;
    p.recordKernel("conv_fwd", 2, sim::usToTicks(10), sim::usToTicks(25));
    p.recordApi("cudaStreamSynchronize", "worker0", 0,
                sim::usToTicks(5));
    p.recordCopy("PtoP", 0, 1, 4096, sim::usToTicks(1),
                 sim::usToTicks(3));
    const std::string json = p.chromeTrace();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"conv_fwd\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\": \"GPU2\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\": \"worker0\""), std::string::npos);
    EXPECT_NE(json.find("PtoP 4096B"), std::string::npos);
    // Duration of the kernel is 15 us.
    EXPECT_NE(json.find("\"dur\": 15"), std::string::npos);
}

/** Count non-overlapping occurrences of @p needle in @p text. */
std::size_t
countOf(const std::string &text, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle);
         pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(ChromeTraceTest, EmitsFlowEventsForCrossTrackDeps)
{
    Profiler p;
    const profiling::RecordId k = p.recordKernel(
        "producer", 0, sim::usToTicks(1), sim::usToTicks(5), "s0");
    // Copy depends on a kernel: different track, so the edge becomes
    // a flow-arrow pair ("s" at the producer, "f" at the consumer).
    p.recordCopy("PtoP", 0, 1, 4096, sim::usToTicks(5),
                 sim::usToTicks(9), 0, {k});
    const std::string json = p.chromeTrace();
    EXPECT_EQ(countOf(json, "\"ph\": \"s\""), 1u);
    EXPECT_EQ(countOf(json, "\"ph\": \"f\""), 1u);
    // Both halves carry the same flow id and category.
    EXPECT_EQ(countOf(json, "\"id\": 1,"), 2u);
    EXPECT_EQ(countOf(json, "\"cat\": \"dep\""), 2u);
}

TEST(ChromeTraceTest, NoFlowEventsForSameTrackDeps)
{
    Profiler p;
    const profiling::RecordId a =
        p.recordKernel("a", 0, 0, sim::usToTicks(10), "s0");
    // Same (device, stream) track: program order is already visible
    // in the timeline, so no arrow is drawn.
    p.recordKernel("b", 0, sim::usToTicks(10), sim::usToTicks(20),
                   "s0", {a});
    const std::string json = p.chromeTrace();
    EXPECT_EQ(countOf(json, "\"ph\": \"s\""), 0u);
    EXPECT_EQ(countOf(json, "\"ph\": \"f\""), 0u);
}

TEST(ChromeTraceTest, BlockingApiFlowArrowBindsToRecordEnd)
{
    Profiler p;
    // Kernel ends at 30us; the blocking sync started at 10us and
    // returns at 32us — the wait is the covered interval, so the
    // arrow must land at the API record's end, not its start.
    const profiling::RecordId k = p.recordKernel(
        "slow", 1, sim::usToTicks(5), sim::usToTicks(30), "s0");
    p.recordApi("cudaStreamSynchronize", "worker1",
                sim::usToTicks(10), sim::usToTicks(32),
                sim::usToTicks(2), /*blocking=*/true, {k});
    const std::string json = p.chromeTrace();
    EXPECT_EQ(countOf(json, "\"ph\": \"s\""), 1u);
    EXPECT_EQ(countOf(json, "\"ph\": \"f\""), 1u);
    // The finish half sits at 32us on the API's own track.
    EXPECT_NE(json.find("\"bp\": \"e\", \"pid\": \"host\", "
                        "\"tid\": \"worker1\", \"ts\": 32"),
              std::string::npos);
}

TEST(ChromeTraceTest, EmptyProfilerYieldsValidSkeleton)
{
    Profiler p;
    const std::string json = p.chromeTrace();
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("]}"), std::string::npos);
}

TEST(ChromeTraceTest, EscapesQuotesInNames)
{
    Profiler p;
    p.recordKernel("weird\"name", 0, 0, 10);
    const std::string json = p.chromeTrace();
    EXPECT_NE(json.find("weird\\\"name"), std::string::npos);
}

TEST(ChromeTraceTest, WritesFile)
{
    Profiler p;
    p.recordKernel("k", 0, 0, 1000);
    const std::string path = "/tmp/dgxsim_trace_test.json";
    p.writeChromeTrace(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("traceEvents"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ChromeTraceTest, TrainingRunProducesBalancedTrace)
{
    core::TrainConfig cfg;
    cfg.model = "lenet";
    cfg.numGpus = 2;
    cfg.batchPerGpu = 16;
    cfg.measuredIterations = 1;
    core::Trainer trainer(cfg);
    trainer.run();
    const std::string json = trainer.profiler().chromeTrace();
    // Every event object closes; a cheap brace-balance check.
    std::size_t open = 0, close = 0;
    for (char c : json) {
        open += c == '{';
        close += c == '}';
    }
    EXPECT_EQ(open, close);
    EXPECT_GT(open, 50u);
    EXPECT_NE(json.find("mxnetEngineDispatch"), std::string::npos);
}

} // namespace
