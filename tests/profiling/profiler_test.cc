/**
 * @file
 * Tests for the nvprof-like profiler: summaries, fractions, and
 * report rendering.
 */

#include <gtest/gtest.h>

#include "profiling/profiler.hh"

namespace {

using namespace dgxsim;
using profiling::Profiler;

TEST(ProfilerTest, KernelSummaryGroupsAndSorts)
{
    Profiler p;
    p.recordKernel("conv", 0, 0, 100);
    p.recordKernel("conv", 0, 100, 300);
    p.recordKernel("gemm", 1, 0, 50);
    auto rows = p.kernelSummary();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].name, "conv");
    EXPECT_EQ(rows[0].calls, 2u);
    EXPECT_EQ(rows[0].totalTime, 300u);
    EXPECT_EQ(rows[1].name, "gemm");
}

TEST(ProfilerTest, ApiTimeAndFraction)
{
    Profiler p;
    p.recordApi("cudaStreamSynchronize", "w0", 0, 750);
    p.recordApi("cudaLaunchKernel", "w0", 750, 1000);
    EXPECT_EQ(p.apiTime("cudaStreamSynchronize"), 750u);
    EXPECT_DOUBLE_EQ(p.apiTimeFraction("cudaStreamSynchronize"), 0.75);
    EXPECT_DOUBLE_EQ(p.apiTimeFraction("missing"), 0.0);
}

TEST(ProfilerTest, DeviceKernelTimeFilters)
{
    Profiler p;
    p.recordKernel("a", 0, 0, 100);
    p.recordKernel("b", 1, 0, 999);
    p.recordKernel("c", 0, 100, 150);
    EXPECT_EQ(p.deviceKernelTime(0), 150u);
    EXPECT_EQ(p.deviceKernelTime(1), 999u);
    EXPECT_EQ(p.deviceKernelTime(7), 0u);
}

TEST(ProfilerTest, CopiedBytesFiltersByKind)
{
    Profiler p;
    p.recordCopy("PtoP", 0, 1, 1000, 0, 10);
    p.recordCopy("DtoH", 0, 8, 500, 0, 10);
    p.recordCopy("PtoP", 1, 2, 250, 0, 10);
    EXPECT_EQ(p.copiedBytes(), 1750u);
    EXPECT_EQ(p.copiedBytes("PtoP"), 1250u);
    EXPECT_EQ(p.copiedBytes("DtoH"), 500u);
}

TEST(ProfilerTest, ClearDropsEverything)
{
    Profiler p;
    p.recordKernel("a", 0, 0, 100);
    p.recordApi("x", "w0", 0, 10);
    p.recordCopy("PtoP", 0, 1, 8, 0, 1);
    p.clear();
    EXPECT_TRUE(p.kernels().empty());
    EXPECT_TRUE(p.apis().empty());
    EXPECT_TRUE(p.copies().empty());
}

TEST(ProfilerTest, ReportMentionsAllSections)
{
    Profiler p;
    p.recordKernel("volta_scudnn_winograd", 0, 0, 1000000);
    p.recordApi("cudaStreamSynchronize", "w0", 0, 500000);
    p.recordCopy("PtoP", 0, 1, 1 << 20, 0, 1000);
    const std::string report = p.report();
    EXPECT_NE(report.find("GPU kernel summary"), std::string::npos);
    EXPECT_NE(report.find("CUDA API summary"), std::string::npos);
    EXPECT_NE(report.find("volta_scudnn_winograd"), std::string::npos);
    EXPECT_NE(report.find("cudaStreamSynchronize"), std::string::npos);
    EXPECT_NE(report.find("PtoP"), std::string::npos);
}

TEST(ProfilerTest, CsvHasHeaderAndRows)
{
    Profiler p;
    p.recordKernel("k", 2, 0, 1000);
    p.recordApi("a", "w1", 0, 2000);
    const std::string csv = p.csv();
    EXPECT_NE(csv.find("kind,name,where,start_us,dur_us,bytes"),
              std::string::npos);
    EXPECT_NE(csv.find("kernel,k,gpu2"), std::string::npos);
    EXPECT_NE(csv.find("api,a,w1"), std::string::npos);
}

TEST(ProfilerTest, SummaryRowAverages)
{
    profiling::SummaryRow row;
    row.calls = 4;
    row.totalTime = sim::usToTicks(100.0);
    EXPECT_DOUBLE_EQ(row.avgUs(), 25.0);
    profiling::SummaryRow empty;
    EXPECT_DOUBLE_EQ(empty.avgUs(), 0.0);
}

} // namespace
