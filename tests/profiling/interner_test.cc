/**
 * @file
 * Tests of the profiler's string interner: canonical storage, Name
 * semantics, and pointer sharing across records.
 */

#include <gtest/gtest.h>

#include <string>

#include "profiling/interner.hh"
#include "profiling/profiler.hh"

namespace {

using namespace dgxsim;
using profiling::Name;

TEST(Interner, SameContentsResolveToOneString)
{
    const std::string &a = profiling::internString("conv2d_fwd");
    const std::string b = "conv2d_" + std::string("fwd");
    const std::string &c = profiling::internString(b);
    EXPECT_EQ(&a, &c);
    EXPECT_EQ(a, "conv2d_fwd");
}

TEST(Interner, DistinctContentsStayDistinct)
{
    const std::size_t before = profiling::internedStringCount();
    const std::string &a = profiling::internString("interner_test_x");
    const std::string &b = profiling::internString("interner_test_y");
    EXPECT_NE(&a, &b);
    EXPECT_GE(profiling::internedStringCount(), before + 2);
}

TEST(Interner, NameComparesByContents)
{
    const Name a("gemm");
    const Name b(std::string_view("gemm"));
    const Name c("gemm2");
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
    EXPECT_EQ(a, "gemm");
    EXPECT_NE(a.find("mm"), std::string::npos);
    EXPECT_EQ(Name("nccl.ring0").rfind("nccl.", 0), 0u);
    EXPECT_TRUE(Name().empty());
    EXPECT_EQ(a.size(), 4u);
}

TEST(Interner, RecordsShareCanonicalStorage)
{
    profiling::Profiler prof;
    prof.recordKernel("interned_kernel", 0, 0, 10, "stream0");
    prof.recordKernel(std::string("interned_kernel"), 1, 10, 20,
                      "stream0");
    ASSERT_EQ(prof.kernels().size(), 2u);
    const std::string &first = prof.kernels()[0].name;
    const std::string &second = prof.kernels()[1].name;
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(&prof.kernels()[0].stream.str(),
              &prof.kernels()[1].stream.str());
    EXPECT_EQ(first, "interned_kernel");
}

} // namespace
