/**
 * @file
 * Property test for the incremental max-min solver: after any
 * sequence of flow starts, completions and capacity changes, every
 * active flow's rate must equal — to the exact double — what a
 * from-scratch max-min allocation over the full network computes.
 * The production solver only re-solves the dirty closure, so this
 * catches any component leak (a flow whose rate should have changed
 * but was not in the recomputed set).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/flow_network.hh"

namespace {

using dgxsim::sim::EventQueue;
using dgxsim::sim::FlowNetwork;

/** The original (pre-incremental) algorithm, reimplemented in the
 * test so the two can never share a bug. */
std::map<FlowNetwork::FlowId, double>
referenceMaxMin(
    const std::vector<double> &caps,
    const std::map<FlowNetwork::FlowId,
                   std::vector<FlowNetwork::ChannelId>> &paths)
{
    std::vector<double> cap = caps;
    std::vector<int> users(caps.size(), 0);
    std::map<FlowNetwork::FlowId, double> rates;
    std::map<FlowNetwork::FlowId, bool> frozen;
    for (const auto &[id, path] : paths) {
        frozen[id] = false;
        for (const auto c : path)
            ++users[c];
    }
    std::size_t left = paths.size();
    while (left > 0) {
        double bestShare = 0;
        std::size_t best = caps.size();
        for (std::size_t c = 0; c < caps.size(); ++c) {
            if (users[c] == 0)
                continue;
            const double share = cap[c] / users[c];
            if (best == caps.size() || share < bestShare) {
                bestShare = share;
                best = c;
            }
        }
        if (best == caps.size()) {
            ADD_FAILURE() << "no bottleneck with flows left";
            return rates;
        }
        for (const auto &[id, path] : paths) {
            if (frozen[id])
                continue;
            bool crosses = false;
            for (const auto c : path) {
                if (c == best) {
                    crosses = true;
                    break;
                }
            }
            if (!crosses)
                continue;
            frozen[id] = true;
            rates[id] = bestShare;
            --left;
            for (const auto c : path) {
                --users[c];
                cap[c] -= bestShare;
                if (cap[c] < 0)
                    cap[c] = 0;
            }
        }
    }
    return rates;
}

struct Harness
{
    EventQueue q;
    FlowNetwork net{q};
    std::vector<double> caps;
    std::map<FlowNetwork::FlowId, std::vector<FlowNetwork::ChannelId>>
        paths;
    std::uint64_t lcgState = 0x9E3779B97F4A7C15ULL;

    std::uint64_t lcg()
    {
        lcgState =
            lcgState * 6364136223846793005ULL + 1442695040888963407ULL;
        return lcgState >> 33;
    }

    void addChannels(std::size_t n, double cap)
    {
        for (std::size_t i = 0; i < n; ++i) {
            net.addChannel(cap, "ch");
            caps.push_back(cap);
        }
    }

    std::vector<FlowNetwork::ChannelId> randomPath()
    {
        const std::size_t hops = 1 + lcg() % 3;
        std::vector<FlowNetwork::ChannelId> path;
        for (std::size_t h = 0; h < hops; ++h)
            path.push_back(lcg() % caps.size());
        return path;
    }

    void start(dgxsim::sim::Bytes bytes)
    {
        auto path = randomPath();
        const auto id = net.startFlow(bytes, path, nullptr);
        paths[id] = std::move(path);
    }

    /** Drop bookkeeping for flows the network has completed. */
    void sweep()
    {
        for (auto it = paths.begin(); it != paths.end();) {
            if (!net.flowActive(it->first))
                it = paths.erase(it);
            else
                ++it;
        }
    }

    void checkAgainstReference()
    {
        sweep();
        const auto expected = referenceMaxMin(caps, paths);
        for (const auto &[id, rate] : expected) {
            EXPECT_EQ(net.currentRate(id), rate)
                << "flow " << id
                << " diverged from the from-scratch solve";
        }
    }
};

TEST(FlowNetworkIncremental, ChurnMatchesFromScratchSolveExactly)
{
    Harness h;
    h.addChannels(12, 25.0);
    // A few long-lived flows pin shared bottlenecks across rounds.
    for (int i = 0; i < 6; ++i)
        h.start(static_cast<dgxsim::sim::Bytes>(1) << 36);
    h.checkAgainstReference();
    for (int round = 0; round < 120; ++round) {
        h.start(500 + h.lcg() % 4000);
        h.checkAgainstReference();
        // Let some completions (and their incremental re-solves) run.
        for (int s = 0; s < 3 && h.q.step(); ++s) {
        }
        h.checkAgainstReference();
    }
}

TEST(FlowNetworkIncremental, CapacityChangeReconvergesTheComponent)
{
    Harness h;
    h.addChannels(8, 10.0);
    for (int i = 0; i < 10; ++i)
        h.start(static_cast<dgxsim::sim::Bytes>(1) << 34);
    h.checkAgainstReference();
    for (int round = 0; round < 40; ++round) {
        const std::size_t c = h.lcg() % h.caps.size();
        const double cap = 1.0 + static_cast<double>(h.lcg() % 40);
        h.net.setChannelCapacity(c, cap);
        h.caps[c] = cap;
        h.checkAgainstReference();
    }
}

TEST(FlowNetworkIncremental, DisjointComponentsDoNotPerturbEachOther)
{
    // Two flows on disjoint channels: starting/finishing one must
    // leave the other's rate double bit-identical, which also proves
    // the unaffected flow was not re-solved to a new value.
    Harness h;
    h.addChannels(4, 7.5);
    const auto a = h.net.startFlow(
        static_cast<dgxsim::sim::Bytes>(1) << 33, {0, 1}, nullptr);
    h.paths[a] = {0, 1};
    const double before = h.net.currentRate(a);
    const auto b = h.net.startFlow(1000, {2, 3}, nullptr);
    h.paths[b] = {2, 3};
    EXPECT_EQ(h.net.currentRate(a), before);
    while (h.net.flowActive(b) && h.q.step()) {
    }
    EXPECT_EQ(h.net.currentRate(a), before);
    h.checkAgainstReference();
}

} // namespace
