/**
 * @file
 * Property tests for flow-network byte conservation under churn:
 * randomized seeded flow populations with capacity changes applied
 * mid-flight must deliver exactly what was requested, with a strict
 * auditor attached throughout. Also pins the completion-ETA clamp
 * regression (an ETA must never round to zero ticks).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "sim/auditor.hh"
#include "sim/event_queue.hh"
#include "sim/flow_network.hh"

namespace {

using dgxsim::sim::Auditor;
using dgxsim::sim::Bytes;
using dgxsim::sim::EventQueue;
using dgxsim::sim::FlowNetwork;
using dgxsim::sim::Tick;

TEST(FlowConservationTest, RandomFlowsWithCapacityChurnConserveBytes)
{
    for (std::uint32_t seed : {1u, 7u, 42u, 1234u}) {
        std::mt19937 rng(seed);
        EventQueue q;
        FlowNetwork net(q);
        Auditor audit; // strict: any violation throws
        net.setAuditor(&audit);

        std::uniform_real_distribution<double> cap_dist(0.5, 16.0);
        const int nchan = 6;
        for (int c = 0; c < nchan; ++c)
            net.addChannel(cap_dist(rng));

        std::uniform_int_distribution<Bytes> bytes_dist(1, 1 << 20);
        std::uniform_int_distribution<int> len_dist(1, 3);
        std::uniform_int_distribution<int> chan_dist(0, nchan - 1);
        std::uniform_int_distribution<Tick> when_dist(0, 50000);

        const int nflows = 40;
        int completed = 0;
        // Expected delivered bytes per channel: each flow charges
        // its full byte count to every channel on its path.
        std::vector<double> expected(nchan, 0.0);
        for (int f = 0; f < nflows; ++f) {
            const Bytes bytes = bytes_dist(rng);
            // Random simple path (channels are a set, but repeats
            // are legal for the fluid model; keep them distinct to
            // stay physical).
            std::vector<FlowNetwork::ChannelId> path;
            const int len = len_dist(rng);
            while (static_cast<int>(path.size()) < len) {
                const auto c = static_cast<FlowNetwork::ChannelId>(
                    chan_dist(rng));
                bool dup = false;
                for (auto seen : path)
                    dup |= seen == c;
                if (!dup)
                    path.push_back(c);
            }
            for (auto c : path)
                expected[c] += static_cast<double>(bytes);
            const Tick at = when_dist(rng);
            q.schedule(at, [&net, &completed, bytes,
                              path = std::move(path)]() {
                net.startFlow(bytes, path, [&completed] {
                    ++completed;
                });
            });
        }

        // Capacity churn while flows are in flight: every change
        // forces a settle + reallocation + rescheduling pass, the
        // exact paths the conservation invariant guards.
        for (int k = 0; k < 25; ++k) {
            const auto c =
                static_cast<FlowNetwork::ChannelId>(chan_dist(rng));
            const double cap = cap_dist(rng);
            q.schedule(when_dist(rng), [&net, c, cap]() {
                net.setChannelCapacity(c, cap);
            });
        }

        ASSERT_NO_THROW(q.run()) << "seed " << seed;
        EXPECT_EQ(completed, nflows) << "seed " << seed;
        EXPECT_EQ(net.activeFlows(), 0u) << "seed " << seed;
        audit.checkQuiescent(q, net);
        EXPECT_EQ(audit.violationCount(), 0u) << "seed " << seed;
        EXPECT_GT(audit.checksPerformed(), 0u);

        // Exact conservation per channel: what went in came out
        // (within the per-flow completion epsilon, accumulated).
        for (int c = 0; c < nchan; ++c) {
            EXPECT_NEAR(net.bytesDelivered(c), expected[c], 1.0)
                << "seed " << seed << " channel " << c;
        }
    }
}

TEST(FlowConservationTest, CompletionEtaNeverRoundsToZero)
{
    // Regression guard for rescheduleCompletions(): a nearly-finished
    // flow on a very fast channel gets an ETA of max(1, ceil(...)),
    // never 0 — a zero ETA would schedule completion at `now` and
    // could livelock the settle/reschedule loop.
    EventQueue q;
    FlowNetwork net(q);
    // Tiny capacity to start, so the flow barely progresses.
    const auto ch = net.addChannel(1e-6);
    bool done = false;
    Tick finish = 0;
    net.startFlow(10, {ch}, [&] {
        done = true;
        finish = q.now();
    });
    // Mid-flight, make the channel absurdly fast: remaining / rate
    // becomes ~1e-11 ticks, the ceil/clamp must still yield >= 1.
    q.schedule(100, [&net, ch]() {
        net.setChannelCapacity(ch, 1e12);
    });
    q.run();
    EXPECT_TRUE(done);
    EXPECT_GE(finish, 101u);
}

TEST(FlowConservationTest, AuditorCatchesOverSubscribedChannel)
{
    // Sanity-check that the rate audit actually bites: force an
    // impossible state by shrinking a channel to a fraction of the
    // allocated rate *between* settle passes is not observable from
    // outside (setChannelCapacity immediately reallocates), so
    // instead verify the audit passes on a legal two-flow share.
    EventQueue q;
    FlowNetwork net(q);
    Auditor audit(/*strict=*/false);
    net.setAuditor(&audit);
    const auto ch = net.addChannel(2.0);
    int done = 0;
    net.startFlow(1000, {ch}, [&] { ++done; });
    net.startFlow(500, {ch}, [&] { ++done; });
    q.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(audit.violationCount(), 0u);
}

} // namespace
