/**
 * @file
 * Stress and property tests for the flow network under large,
 * irregular (but deterministic) workloads.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/flow_network.hh"

namespace {

using namespace dgxsim::sim;

/** Deterministic pseudo-random stream (xorshift32). */
class Rng
{
  public:
    explicit Rng(std::uint32_t seed) : state_(seed ? seed : 1) {}

    std::uint32_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        return state_;
    }

    std::uint32_t
    range(std::uint32_t lo, std::uint32_t hi)
    {
        return lo + next() % (hi - lo + 1);
    }

  private:
    std::uint32_t state_;
};

TEST(FlowNetworkStressTest, HundredsOfStaggeredFlowsAllComplete)
{
    EventQueue q;
    FlowNetwork net(q);
    std::vector<FlowNetwork::ChannelId> chans;
    for (int c = 0; c < 12; ++c)
        chans.push_back(net.addChannel(0.5 + 0.25 * c));

    Rng rng(12345);
    int completed = 0;
    const int flows = 400;
    Bytes total_bytes = 0;
    std::vector<Bytes> per_chan(chans.size(), 0);
    for (int f = 0; f < flows; ++f) {
        const Bytes bytes = rng.range(100, 100000);
        // 1-3 channel path with distinct channels.
        std::vector<FlowNetwork::ChannelId> path;
        const int hops = rng.range(1, 3);
        std::uint32_t first = rng.range(0, chans.size() - 1);
        for (int h = 0; h < hops; ++h)
            path.push_back(chans[(first + h) % chans.size()]);
        for (auto c : path)
            per_chan[c] += bytes;
        total_bytes += bytes;
        const Tick start = rng.range(0, 50000);
        q.schedule(start, [&net, bytes, path, &completed] {
            net.startFlow(bytes, path, [&completed] { ++completed; });
        });
    }
    q.run();
    EXPECT_EQ(completed, flows);
    for (std::size_t c = 0; c < chans.size(); ++c)
        EXPECT_NEAR(net.bytesDelivered(chans[c]),
                    static_cast<double>(per_chan[c]), 1.0 * flows);
}

TEST(FlowNetworkStressTest, ThroughputNeverExceedsCapacityIntegral)
{
    // Over the whole run, delivered bytes on a channel cannot exceed
    // capacity x elapsed time.
    EventQueue q;
    FlowNetwork net(q);
    const double cap = 2.0;
    auto ch = net.addChannel(cap);
    Rng rng(999);
    for (int f = 0; f < 100; ++f) {
        const Bytes bytes = rng.range(1000, 50000);
        const Tick start = rng.range(0, 10000);
        q.schedule(start,
                   [&net, ch, bytes] { net.startFlow(bytes, {ch}, {}); });
    }
    const Tick end = q.run();
    EXPECT_LE(net.bytesDelivered(ch),
              cap * static_cast<double>(end) + 1.0);
    EXPECT_LE(net.busyTicks(ch), static_cast<double>(end) + 1.0);
}

TEST(FlowNetworkStressTest, DeterministicAcrossIdenticalRuns)
{
    auto run_once = [] {
        EventQueue q;
        FlowNetwork net(q);
        auto a = net.addChannel(1.0);
        auto b = net.addChannel(3.0);
        Rng rng(777);
        std::vector<Tick> ends;
        for (int f = 0; f < 64; ++f) {
            const Bytes bytes = rng.range(10, 5000);
            const bool both = rng.next() % 2;
            std::vector<dgxsim::sim::FlowNetwork::ChannelId> path =
                both ? std::vector<FlowNetwork::ChannelId>{a, b}
                     : std::vector<FlowNetwork::ChannelId>{a};
            q.schedule(rng.range(0, 2000),
                       [&net, &q, bytes, path, &ends] {
                           net.startFlow(bytes, path, [&q, &ends] {
                               ends.push_back(q.now());
                           });
                       });
        }
        q.run();
        return ends;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(FlowNetworkStressTest, CascadingCompletionsDoNotStarveAnyFlow)
{
    // A long chain where each completion launches the next while a
    // background elephant flow persists: the elephant must still
    // finish (no starvation in max-min sharing).
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(1.0);
    bool elephant_done = false;
    net.startFlow(200000, {ch}, [&] { elephant_done = true; });

    int mice = 0;
    std::function<void()> launch = [&]() {
        if (mice++ >= 100)
            return;
        net.startFlow(500, {ch}, launch);
    };
    launch();
    q.run();
    EXPECT_TRUE(elephant_done);
    EXPECT_EQ(mice, 101);
}

TEST(FlowNetworkStressTest, BusyTicksReflectUtilization)
{
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(1.0);
    net.startFlow(1000, {ch}, {});
    q.run();
    // Fully busy for 1000 ticks.
    EXPECT_NEAR(net.busyTicks(ch), 1000.0, 2.0);
}

} // namespace
