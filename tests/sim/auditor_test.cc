/**
 * @file
 * Unit tests for the invariant auditor: lane/thread monotonicity,
 * memory bookkeeping, copy sanity, quiescence, and the strict vs.
 * collecting failure modes.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/auditor.hh"
#include "sim/event_queue.hh"
#include "sim/flow_network.hh"
#include "sim/logging.hh"

namespace {

using dgxsim::sim::Auditor;
using dgxsim::sim::EventQueue;
using dgxsim::sim::FatalError;
using dgxsim::sim::FlowNetwork;

TEST(AuditorTest, PassingChecksAccumulateNoViolations)
{
    Auditor audit;
    audit.expect(true, 10, "fine");
    audit.expect(true, 20, "also fine");
    EXPECT_EQ(audit.checksPerformed(), 2u);
    EXPECT_EQ(audit.violationCount(), 0u);
}

TEST(AuditorTest, StrictModeThrowsOnFirstViolation)
{
    Auditor audit(/*strict=*/true);
    EXPECT_THROW(audit.expect(false, 5, "boom at ", 5),
                 FatalError);
    EXPECT_EQ(audit.violationCount(), 1u);
}

TEST(AuditorTest, NonStrictModeCollectsViolations)
{
    Auditor audit(/*strict=*/false);
    audit.expect(false, 1, "first");
    audit.expect(false, 2, "second");
    EXPECT_EQ(audit.violationCount(), 2u);
    EXPECT_EQ(audit.violations()[0].what, "first");
    EXPECT_EQ(audit.violations()[1].when, 2u);
}

TEST(AuditorTest, KernelLaneMustBeMonotonic)
{
    Auditor audit(/*strict=*/false);
    audit.onKernelRecord(0, "compute0", 0, 100);
    audit.onKernelRecord(0, "compute0", 100, 200); // ok: abuts
    audit.onKernelRecord(0, "compute0", 150, 300); // overlap
    EXPECT_EQ(audit.violationCount(), 1u);
}

TEST(AuditorTest, DifferentLanesOnOneDeviceMayOverlap)
{
    // Two streams on the same GPU legitimately run concurrently.
    Auditor audit(/*strict=*/false);
    audit.onKernelRecord(0, "compute0", 0, 100);
    audit.onKernelRecord(0, "nccl.red.h0", 50, 150);
    EXPECT_EQ(audit.violationCount(), 0u);
}

TEST(AuditorTest, SameLaneOnDifferentDevicesIsIndependent)
{
    Auditor audit(/*strict=*/false);
    audit.onKernelRecord(0, "comm", 0, 100);
    audit.onKernelRecord(1, "comm", 50, 150);
    EXPECT_EQ(audit.violationCount(), 0u);
}

TEST(AuditorTest, EmptyLaneOnlyChecksDuration)
{
    Auditor audit(/*strict=*/false);
    audit.onKernelRecord(0, "", 0, 100);
    audit.onKernelRecord(0, "", 50, 150); // overlap tolerated
    EXPECT_EQ(audit.violationCount(), 0u);
    audit.onKernelRecord(0, "", 100, 50); // end < start is not
    EXPECT_EQ(audit.violationCount(), 1u);
}

TEST(AuditorTest, HostThreadsAreSerial)
{
    Auditor audit(/*strict=*/false);
    audit.onApiRecord("worker0", 0, 100);
    audit.onApiRecord("worker1", 50, 150); // other thread: fine
    audit.onApiRecord("worker0", 90, 200); // overlaps its own
    EXPECT_EQ(audit.violationCount(), 1u);
}

TEST(AuditorTest, CopyWireBytesMustCoverPayload)
{
    Auditor audit(/*strict=*/false);
    audit.onCopyRecord(0, 10, 100, 100); // wire == payload: fine
    audit.onCopyRecord(0, 10, 100, 133); // inflated wire: fine
    audit.onCopyRecord(0, 10, 100, 50);  // wire < payload: bug
    EXPECT_EQ(audit.violationCount(), 1u);
}

TEST(AuditorTest, MemoryInvariants)
{
    Auditor audit(/*strict=*/false);
    audit.onMemoryUpdate(100, 100, 1000, 100); // consistent
    EXPECT_EQ(audit.violationCount(), 0u);
    audit.onMemoryUpdate(2000, 2000, 1000, 2000); // over capacity
    EXPECT_GE(audit.violationCount(), 1u);
    const auto before = audit.violationCount();
    audit.onMemoryUpdate(100, 100, 1000, 90); // categories drifted
    EXPECT_GT(audit.violationCount(), before);
}

TEST(AuditorTest, QuiescentPassesOnDrainedState)
{
    EventQueue q;
    FlowNetwork net(q);
    net.addChannel(1.0);
    Auditor audit;
    net.setAuditor(&audit);
    bool done = false;
    net.startFlow(100, {0}, [&] { done = true; });
    q.run();
    EXPECT_TRUE(done);
    EXPECT_NO_THROW(audit.checkQuiescent(q, net));
    EXPECT_GT(audit.checksPerformed(), 0u);
}

TEST(AuditorTest, QuiescentFlagsPendingWork)
{
    EventQueue q;
    FlowNetwork net(q);
    net.addChannel(1.0);
    net.startFlow(100, {0}, [] {});
    // Do not run the queue: the flow's completion is still pending.
    Auditor audit(/*strict=*/false);
    audit.checkQuiescent(q, net);
    EXPECT_GE(audit.violationCount(), 2u); // queue + active flow
}

TEST(AuditorTest, SummaryMentionsCounts)
{
    Auditor audit(/*strict=*/false);
    audit.expect(true, 0, "ok");
    audit.expect(false, 1, "bad");
    const std::string s = audit.summary();
    EXPECT_NE(s.find("2"), std::string::npos);
    EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(AuditorTest, EnvEnabledRespectsValue)
{
    ::unsetenv("DGXSIM_AUDIT");
    EXPECT_FALSE(Auditor::envEnabled());
    ::setenv("DGXSIM_AUDIT", "0", 1);
    EXPECT_FALSE(Auditor::envEnabled());
    ::setenv("DGXSIM_AUDIT", "1", 1);
    EXPECT_TRUE(Auditor::envEnabled());
    ::unsetenv("DGXSIM_AUDIT");
}

} // namespace
