/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * cancellation and bounded runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace {

using dgxsim::sim::EventHandle;
using dgxsim::sim::EventQueue;
using dgxsim::sim::Tick;

TEST(EventQueueTest, StartsAtTickZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pendingEvents(), 0u);
    EXPECT_FALSE(q.step());
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueueTest, SameTickEventsRunInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CallbackCanScheduleFurtherEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleAfter(4, [&] {
            ++fired;
            q.scheduleAfter(5, [&] { ++fired; });
        });
    });
    q.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueueTest, SchedulingInThePastIsFatal)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_THROW(q.schedule(50, [] {}), dgxsim::sim::FatalError);
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventHandle h = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(h.valid());
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(h.valid());
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.executedEvents(), 0u);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse)
{
    EventQueue q;
    EventHandle h = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueueTest, CancelAfterFiringReturnsFalse)
{
    EventQueue q;
    EventHandle h = q.schedule(10, [] {});
    q.run();
    EXPECT_FALSE(h.valid());
    EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueueTest, CancelledEventDoesNotBlockQueueDrain)
{
    EventQueue q;
    EventHandle h = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.cancel(h);
    EXPECT_EQ(q.pendingEvents(), 1u);
    q.run();
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.executedEvents(), 1u);
}

TEST(EventQueueTest, RunUntilStopsAtLimit)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(10, [&] { fired.push_back(10); });
    q.schedule(20, [&] { fired.push_back(20); });
    q.schedule(30, [&] { fired.push_back(30); });
    q.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(fired.back(), 30u);
}

TEST(EventQueueTest, RunUntilAdvancesTimeWhenQueueDrains)
{
    EventQueue q;
    q.schedule(5, [] {});
    q.runUntil(100);
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueueTest, StepExecutesExactlyOneEvent)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] { ++count; });
    q.schedule(2, [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), 1u);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueueTest, ExecutedEventsCounterCounts)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(i + 1, [] {});
    q.run();
    EXPECT_EQ(q.executedEvents(), 7u);
}

TEST(EventQueueTest, ArenaRecyclesRecordsInsteadOfGrowing)
{
    // Sequential schedule/fire churn far beyond one slab must keep
    // reusing the free list: the arena stays at its first slab.
    EventQueue q;
    for (int i = 0; i < 10000; ++i) {
        q.schedule(q.now() + 1, [] {});
        q.step();
    }
    EXPECT_EQ(q.executedEvents(), 10000u);
    EXPECT_LE(q.arenaRecords(), 512u) << "free list not reused";
}

TEST(EventQueueTest, ArenaGrowsBySlabUnderLivePressure)
{
    EventQueue q;
    for (int i = 0; i < 1000; ++i)
        q.schedule(10, [] {});
    EXPECT_GE(q.arenaRecords(), 1000u);
    EXPECT_EQ(q.arenaRecords() % 512u, 0u) << "slab granularity";
    const std::size_t peak = q.arenaRecords();
    q.run();
    // Slabs are retained for reuse, never returned mid-simulation.
    EXPECT_EQ(q.arenaRecords(), peak);
}

TEST(EventQueueTest, StaleHandleCannotCancelARecycledRecord)
{
    // After a record is recycled its generation advances, so a
    // handle from the previous occupant must not cancel (or even
    // report valid for) the new event sharing the same slot.
    EventQueue q;
    EventHandle old = q.schedule(1, [] {});
    q.run(); // fires; record returns to the free list
    bool ran = false;
    EventHandle fresh = q.schedule(2, [&] { ran = true; });
    EXPECT_FALSE(old.valid());
    EXPECT_FALSE(q.cancel(old));
    EXPECT_TRUE(fresh.valid());
    q.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueueTest, CancelHeavyChurnKeepsCountsConsistent)
{
    // The FlowNetwork pattern: every round cancels K handles and
    // reschedules them. Counters and drain behavior must match the
    // naive queue's semantics exactly.
    EventQueue q;
    const int K = 8;
    std::vector<EventHandle> handles(K);
    long fired = 0;
    for (int round = 0; round < 200; ++round) {
        for (int k = 0; k < K; ++k) {
            q.cancel(handles[k]);
            handles[k] = q.schedule(q.now() + 1 + (k * 7 + round) % 5,
                                    [&fired] { ++fired; });
        }
        q.step();
    }
    q.run();
    EXPECT_EQ(q.executedEvents(), static_cast<std::uint64_t>(fired));
    EXPECT_EQ(q.pendingEvents(), 0u);
    EXPECT_TRUE(q.empty());
}

/** Deterministic interleave: a self-rescheduling pair of processes. */
TEST(EventQueueTest, InterleavedProcessesAreDeterministic)
{
    auto run_once = [] {
        EventQueue q;
        std::vector<int> trace;
        std::function<void(int, Tick)> proc = [&](int id, Tick period) {
            trace.push_back(id);
            if (q.now() < 100) {
                q.scheduleAfter(period,
                                [&proc, id, period] { proc(id, period); });
            }
        };
        q.schedule(0, [&] { proc(1, 7); });
        q.schedule(0, [&] { proc(2, 11); });
        q.run();
        return trace;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
