/**
 * @file
 * Unit tests for time/byte unit conversions.
 */

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace {

using namespace dgxsim::sim;

TEST(TypesTest, TickUnitRatios)
{
    EXPECT_EQ(ticksPerNs, 1000u);
    EXPECT_EQ(ticksPerUs, 1000u * 1000u);
    EXPECT_EQ(ticksPerMs, 1000u * 1000u * 1000u);
    EXPECT_EQ(ticksPerSec, 1000ull * 1000 * 1000 * 1000);
}

TEST(TypesTest, RoundTripSeconds)
{
    EXPECT_DOUBLE_EQ(ticksToSec(secToTicks(1.5)), 1.5);
    EXPECT_DOUBLE_EQ(ticksToMs(msToTicks(2.0)), 2.0);
    EXPECT_DOUBLE_EQ(ticksToUs(usToTicks(7.0)), 7.0);
}

TEST(TypesTest, NsConversion)
{
    EXPECT_EQ(nsToTicks(1.0), 1000u);
    EXPECT_EQ(usToTicks(1.0), 1000000u);
}

TEST(TypesTest, ByteLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(1_MiB, 1024u * 1024u);
    EXPECT_EQ(16_GiB, 16ull << 30);
}

TEST(TypesTest, BandwidthConversion)
{
    // 25 GB/s == 0.025 bytes per picosecond tick.
    EXPECT_DOUBLE_EQ(gbpsToBytesPerTick(25.0), 0.025);
    EXPECT_DOUBLE_EQ(bytesPerTickToGbps(gbpsToBytesPerTick(123.0)), 123.0);
}

TEST(TypesTest, BandwidthTimesTimeGivesBytes)
{
    // 25 GB/s for 1 ms should move 25 MB.
    const double bytes = gbpsToBytesPerTick(25.0) *
                         static_cast<double>(msToTicks(1.0));
    EXPECT_NEAR(bytes, 25e6, 1.0);
}

} // namespace
