/**
 * @file
 * Unit and property tests for the max-min fair fluid flow network.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/flow_network.hh"
#include "sim/logging.hh"

namespace {

using dgxsim::sim::Bytes;
using dgxsim::sim::EventQueue;
using dgxsim::sim::FlowNetwork;
using dgxsim::sim::Tick;

/** 1 byte per tick keeps the arithmetic exact in tests. */
constexpr double kUnitRate = 1.0;

TEST(FlowNetworkTest, SingleFlowTakesBytesOverCapacity)
{
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(kUnitRate);
    bool done = false;
    net.startFlow(1000, {ch}, [&] { done = true; });
    q.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(q.now(), 1000u);
}

TEST(FlowNetworkTest, LatencyDelaysCompletion)
{
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(kUnitRate);
    Tick finished = 0;
    net.startFlow(1000, {ch}, [&] { finished = q.now(); }, 250);
    q.run();
    EXPECT_EQ(finished, 1250u);
}

TEST(FlowNetworkTest, ZeroByteFlowCompletesAfterLatencyOnly)
{
    EventQueue q;
    FlowNetwork net(q);
    net.addChannel(kUnitRate);
    Tick finished = 0;
    net.startFlow(0, {}, [&] { finished = q.now(); }, 42);
    q.run();
    EXPECT_EQ(finished, 42u);
}

TEST(FlowNetworkTest, TwoFlowsShareOneChannelFairly)
{
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(kUnitRate);
    Tick t1 = 0, t2 = 0;
    net.startFlow(1000, {ch}, [&] { t1 = q.now(); });
    net.startFlow(1000, {ch}, [&] { t2 = q.now(); });
    q.run();
    // Both at half rate the whole way: 2000 ticks each.
    EXPECT_NEAR(static_cast<double>(t1), 2000.0, 2.0);
    EXPECT_NEAR(static_cast<double>(t2), 2000.0, 2.0);
}

TEST(FlowNetworkTest, ShortFlowFreesBandwidthForLongFlow)
{
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(kUnitRate);
    Tick t_short = 0, t_long = 0;
    net.startFlow(3000, {ch}, [&] { t_long = q.now(); });
    net.startFlow(1000, {ch}, [&] { t_short = q.now(); });
    q.run();
    // Share until the short one finishes at 2000 (1000 bytes at 1/2),
    // then the long one has 2000 bytes left at full rate -> 4000.
    EXPECT_NEAR(static_cast<double>(t_short), 2000.0, 2.0);
    EXPECT_NEAR(static_cast<double>(t_long), 4000.0, 4.0);
}

TEST(FlowNetworkTest, LateArrivalSlowsExistingFlow)
{
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(kUnitRate);
    Tick t1 = 0;
    net.startFlow(1000, {ch}, [&] { t1 = q.now(); });
    q.schedule(500, [&] { net.startFlow(5000, {ch}, [] {}); });
    q.run();
    // First flow: 500 bytes at full rate, 500 at half -> 1500.
    EXPECT_NEAR(static_cast<double>(t1), 1500.0, 2.0);
}

TEST(FlowNetworkTest, MultiHopFlowLimitedByBottleneck)
{
    EventQueue q;
    FlowNetwork net(q);
    auto fast = net.addChannel(4 * kUnitRate);
    auto slow = net.addChannel(kUnitRate);
    Tick t = 0;
    net.startFlow(1000, {fast, slow}, [&] { t = q.now(); });
    q.run();
    EXPECT_NEAR(static_cast<double>(t), 1000.0, 2.0);
}

TEST(FlowNetworkTest, MaxMinAllocationClassicExample)
{
    // Classic max-min: flows A:{1}, B:{1,2}, C:{2}; cap(1)=1, cap(2)=2.
    // B is bottlenecked on channel 1 at 0.5; C then gets 1.5 on
    // channel 2; A gets 0.5.
    EventQueue q;
    FlowNetwork net(q);
    auto c1 = net.addChannel(1.0);
    auto c2 = net.addChannel(2.0);
    auto fa = net.startFlow(1000000, {c1}, [] {});
    auto fb = net.startFlow(1000000, {c1, c2}, [] {});
    auto fc = net.startFlow(1000000, {c2}, [] {});
    // Rates are set synchronously at start; inspect before running.
    EXPECT_NEAR(net.currentRate(fa), 0.5, 1e-9);
    EXPECT_NEAR(net.currentRate(fb), 0.5, 1e-9);
    EXPECT_NEAR(net.currentRate(fc), 1.5, 1e-9);
    q.run();
}

TEST(FlowNetworkTest, RatesNeverExceedChannelCapacity)
{
    EventQueue q;
    FlowNetwork net(q);
    std::vector<FlowNetwork::ChannelId> chans;
    for (int i = 0; i < 4; ++i)
        chans.push_back(net.addChannel(1.0 + i));
    std::vector<FlowNetwork::FlowId> flows;
    // A deterministic mesh of overlapping paths.
    flows.push_back(net.startFlow(1 << 20, {chans[0]}, [] {}));
    flows.push_back(net.startFlow(1 << 20, {chans[0], chans[1]}, [] {}));
    flows.push_back(net.startFlow(1 << 20, {chans[1], chans[2]}, [] {}));
    flows.push_back(net.startFlow(1 << 20, {chans[2], chans[3]}, [] {}));
    flows.push_back(net.startFlow(1 << 20, {chans[3], chans[0]}, [] {}));

    // Channel loads must respect capacity.
    std::vector<double> load(4, 0.0);
    load[0] = net.currentRate(flows[0]) + net.currentRate(flows[1]) +
              net.currentRate(flows[4]);
    load[1] = net.currentRate(flows[1]) + net.currentRate(flows[2]);
    load[2] = net.currentRate(flows[2]) + net.currentRate(flows[3]);
    load[3] = net.currentRate(flows[3]) + net.currentRate(flows[4]);
    for (int i = 0; i < 4; ++i)
        EXPECT_LE(load[i], net.channelCapacity(chans[i]) + 1e-9);
    // Every flow makes progress.
    for (auto f : flows)
        EXPECT_GT(net.currentRate(f), 0.0);
    q.run();
}

TEST(FlowNetworkTest, DeliveredBytesMatchPayload)
{
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(kUnitRate);
    net.startFlow(1234, {ch}, [] {});
    net.startFlow(4321, {ch}, [] {});
    q.run();
    EXPECT_NEAR(net.bytesDelivered(ch), 1234 + 4321, 1.0);
}

TEST(FlowNetworkTest, CapacityChangeReschedulesFlows)
{
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(kUnitRate);
    Tick t = 0;
    net.startFlow(1000, {ch}, [&] { t = q.now(); });
    q.schedule(500, [&] { net.setChannelCapacity(ch, 5.0); });
    q.run();
    // 500 bytes at rate 1, then 500 bytes at rate 5 -> 600 total.
    EXPECT_NEAR(static_cast<double>(t), 600.0, 2.0);
}

TEST(FlowNetworkTest, CompletionCallbackCanStartNewFlow)
{
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(kUnitRate);
    Tick done_second = 0;
    net.startFlow(100, {ch}, [&] {
        net.startFlow(100, {ch}, [&] { done_second = q.now(); });
    });
    q.run();
    EXPECT_EQ(done_second, 200u);
}

TEST(FlowNetworkTest, UnknownChannelIsFatal)
{
    EventQueue q;
    FlowNetwork net(q);
    net.addChannel(kUnitRate);
    EXPECT_THROW(net.startFlow(10, {7}, [] {}),
                 dgxsim::sim::FatalError);
    EXPECT_THROW(net.addChannel(0.0), dgxsim::sim::FatalError);
}

TEST(FlowNetworkTest, FlowActiveReflectsLifetime)
{
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(kUnitRate);
    auto f = net.startFlow(100, {ch}, [] {});
    EXPECT_TRUE(net.flowActive(f));
    q.run();
    EXPECT_FALSE(net.flowActive(f));
}

/** Property sweep: N equal flows on one channel finish at N * T. */
class EqualShareSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(EqualShareSweep, NFlowsFinishTogetherAtNTimesSolo)
{
    const int n = GetParam();
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(kUnitRate);
    std::vector<Tick> ends(n, 0);
    for (int i = 0; i < n; ++i)
        net.startFlow(1000, {ch}, [&ends, i, &q] { ends[i] = q.now(); });
    q.run();
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(static_cast<double>(ends[i]), 1000.0 * n, 2.0 * n);
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, EqualShareSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

/**
 * Property: total bytes delivered over any schedule equals the sum of
 * the payloads (work conservation), for staggered arrivals.
 */
class ConservationSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ConservationSweep, WorkIsConserved)
{
    const int n = GetParam();
    EventQueue q;
    FlowNetwork net(q);
    auto ch = net.addChannel(2.5);
    Bytes total = 0;
    for (int i = 0; i < n; ++i) {
        const Bytes payload = 100 + 37 * i;
        total += payload;
        q.schedule(static_cast<Tick>(13 * i), [&net, ch, payload] {
            net.startFlow(payload, {ch}, [] {});
        });
    }
    q.run();
    EXPECT_NEAR(net.bytesDelivered(ch), static_cast<double>(total),
                1.0 * n);
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, ConservationSweep,
                         ::testing::Values(1, 2, 5, 9, 17));

} // namespace
