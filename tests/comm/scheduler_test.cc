/**
 * @file
 * Property tests on the gradient-bucket scheduler (comm/scheduler.hh):
 * chunk byte conservation for every policy across partition sizes
 * (including non-divisor and 1-byte edges), ordering semantics,
 * credit-window admission, wire-byte conservation through a full
 * simulated run, and digest stability across campaign thread counts.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "campaign/campaign.hh"
#include "comm/scheduler.hh"
#include "core/trainer_base.hh"

namespace {

using namespace dgxsim;
using comm::OpKind;
using comm::SchedChunk;
using comm::SchedulerPolicy;

struct OpResult
{
    sim::Bytes bytesSeen = 0;
    int chunksSeen = 0;
    int doneFired = 0;
    std::set<int> indices;
};

/**
 * Submit @p sizes as ops and drain the scheduler chunk by chunk,
 * tallying what each op's chunks deliver.
 */
std::vector<OpResult>
drain(comm::Scheduler &sched, const std::vector<sim::Bytes> &sizes)
{
    std::vector<OpResult> results(sizes.size());
    std::map<const comm::SchedOpState *, std::size_t> opIndex;
    std::vector<std::shared_ptr<comm::SchedOpState>> keepAlive;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        OpResult *r = &results[i];
        sched.submit(OpKind::Reduce, sizes[i], static_cast<int>(i),
                     [r] { ++r->doneFired; }, nullptr);
    }
    SchedChunk chunk;
    while (sched.next(chunk)) {
        // Identify the op by its priority (unique per op here).
        OpResult &r = results[static_cast<std::size_t>(
            chunk.op->priority)];
        r.bytesSeen += chunk.bytes;
        ++r.chunksSeen;
        EXPECT_TRUE(r.indices.insert(chunk.index).second)
            << "duplicate chunk index " << chunk.index;
        if (sched.finishChunk(chunk))
            chunk.op->done();
    }
    EXPECT_TRUE(sched.idle());
    return results;
}

class ConservationSweep
    : public ::testing::TestWithParam<
          std::tuple<SchedulerPolicy, sim::Bytes>>
{
};

TEST_P(ConservationSweep, ChunksConserveEveryOpsBytes)
{
    const auto [policy, partition] = GetParam();
    auto sched = comm::makeScheduler(policy, partition,
                                     comm::kDefaultCreditBytes, {});
    // Byte counts bracketing the partition size: non-divisors,
    // exact multiples, and single-byte ops.
    std::vector<sim::Bytes> sizes = {1, 2, partition, partition + 1,
                                     3 * partition + 7};
    if (partition > 1)
        sizes.push_back(partition - 1);
    const auto results = drain(*sched, sizes);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_EQ(results[i].bytesSeen, sizes[i]) << "op " << i;
        EXPECT_EQ(results[i].doneFired, 1) << "op " << i;
        const int expectChunks =
            policy == SchedulerPolicy::Partitioned
                ? static_cast<int>((sizes[i] + partition - 1) /
                                   partition)
                : 1;
        EXPECT_EQ(results[i].chunksSeen, expectChunks) << "op " << i;
        // Indices must be the dense range [0, chunks).
        EXPECT_EQ(results[i].indices.size(),
                  static_cast<std::size_t>(results[i].chunksSeen));
        if (!results[i].indices.empty()) {
            EXPECT_EQ(*results[i].indices.begin(), 0);
            EXPECT_EQ(*results[i].indices.rbegin(),
                      results[i].chunksSeen - 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByPartition, ConservationSweep,
    ::testing::Combine(
        ::testing::Values(SchedulerPolicy::Fifo,
                          SchedulerPolicy::Priority,
                          SchedulerPolicy::Partitioned),
        ::testing::Values(sim::Bytes(1), sim::Bytes(3),
                          sim::Bytes(1) << 10,
                          (sim::Bytes(4) << 20) - 1,
                          sim::Bytes(4) << 20)));

TEST(SchedulerOrder, FifoKeepsSubmissionOrderDespitePriorities)
{
    auto sched = comm::makeScheduler(SchedulerPolicy::Fifo,
                                     comm::kDefaultPartitionBytes,
                                     comm::kDefaultCreditBytes, {});
    sched->submit(OpKind::Reduce, 1000, 0, [] {}, nullptr);
    sched->submit(OpKind::Reduce, 10, 99, [] {}, nullptr);
    SchedChunk chunk;
    ASSERT_TRUE(sched->next(chunk));
    EXPECT_EQ(chunk.op->priority, 0); // submitted first, served first
    // Legacy FIFO serializes: the second op waits for the first.
    SchedChunk blocked;
    EXPECT_FALSE(sched->next(blocked));
    sched->finishChunk(chunk);
    ASSERT_TRUE(sched->next(chunk));
    EXPECT_EQ(chunk.op->priority, 99);
    sched->finishChunk(chunk);
}

TEST(SchedulerOrder, PriorityLetsUrgentSmallOvertakeLargeEarly)
{
    auto sched = comm::makeScheduler(SchedulerPolicy::Priority,
                                     comm::kDefaultPartitionBytes,
                                     comm::kDefaultCreditBytes, {});
    sched->submit(OpKind::Reduce, sim::Bytes(64) << 20, 0, [] {},
                  nullptr);
    sched->submit(OpKind::Reduce, 10, 5, [] {}, nullptr);
    SchedChunk chunk;
    ASSERT_TRUE(sched->next(chunk));
    EXPECT_EQ(chunk.op->priority, 5); // urgent op overtakes
}

TEST(SchedulerOrder, PartitionedInterleavesAtChunkBoundaries)
{
    // A big op is admitted first (alone in the queue); an urgent op
    // submitted afterwards slips in at the next chunk boundary
    // instead of waiting for the whole big tensor.
    auto sched = comm::makeScheduler(SchedulerPolicy::Partitioned,
                                     sim::Bytes(1) << 20,
                                     comm::kDefaultCreditBytes, {});
    sched->submit(OpKind::Reduce, sim::Bytes(8) << 20, 0, [] {},
                  nullptr);
    SchedChunk first;
    ASSERT_TRUE(sched->next(first));
    EXPECT_EQ(first.op->priority, 0);
    sched->submit(OpKind::Reduce, 10, 1, [] {}, nullptr);
    SchedChunk second;
    ASSERT_TRUE(sched->next(second));
    EXPECT_EQ(second.op->priority, 1);
    sched->finishChunk(first);
    sched->finishChunk(second);
}

TEST(SchedulerWindow, CreditBoundsInFlightBytes)
{
    auto sched = comm::makeScheduler(SchedulerPolicy::Priority,
                                     comm::kDefaultPartitionBytes,
                                     sim::Bytes(10), {});
    sched->submit(OpKind::Reduce, 100, 0, [] {}, nullptr);
    sched->submit(OpKind::Reduce, 100, 1, [] {}, nullptr);
    SchedChunk chunk;
    ASSERT_TRUE(sched->next(chunk)); // always admits at least one
    EXPECT_EQ(sched->inFlightBytes(), sim::Bytes(100));
    SchedChunk blocked;
    EXPECT_FALSE(sched->next(blocked)); // window exhausted
    sched->finishChunk(chunk);
    EXPECT_TRUE(sched->next(chunk));
    sched->finishChunk(chunk);
}

TEST(SchedulerWindow, MaxInFlightChunksIsHonored)
{
    comm::SchedulerLimits limits;
    limits.maxInFlightChunks = 1;
    auto sched = comm::makeScheduler(SchedulerPolicy::Partitioned,
                                     sim::Bytes(1) << 10,
                                     comm::kDefaultCreditBytes, limits);
    sched->submit(OpKind::Reduce, sim::Bytes(8) << 10, 0, [] {},
                  nullptr);
    SchedChunk chunk;
    ASSERT_TRUE(sched->next(chunk));
    SchedChunk blocked;
    EXPECT_FALSE(sched->next(blocked));
    sched->finishChunk(chunk);
    ASSERT_TRUE(sched->next(chunk));
    sched->finishChunk(chunk);
}

core::TrainConfig
schedConfig(const std::string &model, int gpus,
            comm::CommMethod method, SchedulerPolicy policy)
{
    core::TrainConfig cfg;
    cfg.model = model;
    cfg.numGpus = gpus;
    cfg.batchPerGpu = 16;
    cfg.method = method;
    cfg.overlapBpWu = true;
    cfg.commConfig.scheduler = policy;
    return cfg;
}

/**
 * Reordering and splitting decide *when* bytes go on the wire, never
 * *how many*: every policy must move the identical gradient volume
 * through the flow network, and the audited run must stay clean.
 */
TEST(SchedulerFlow, EveryPolicyConservesWireBytes)
{
    for (auto method :
         {comm::CommMethod::P2P, comm::CommMethod::NCCL}) {
        double fifoBytes = -1;
        for (auto policy :
             {SchedulerPolicy::Fifo, SchedulerPolicy::Priority,
              SchedulerPolicy::Partitioned}) {
            core::TrainConfig cfg =
                schedConfig("alexnet", 4, method, policy);
            cfg.audit = true;
            const core::TrainReport rep =
                core::TrainerBase::simulate(cfg);
            EXPECT_TRUE(rep.audited);
            EXPECT_EQ(rep.auditViolations, 0u)
                << comm::schedulerName(policy);
            if (fifoBytes < 0)
                fifoBytes = rep.interGpuBytesPerIter;
            else
                EXPECT_DOUBLE_EQ(rep.interGpuBytesPerIter, fifoBytes)
                    << comm::schedulerName(policy);
        }
    }
}

/** Same config, different thread counts: digests must not move. */
TEST(SchedulerDeterminism, DigestsStableAcrossCampaignJobs)
{
    std::vector<core::TrainConfig> configs;
    for (auto policy :
         {SchedulerPolicy::Priority, SchedulerPolicy::Partitioned}) {
        configs.push_back(schedConfig("alexnet", 4,
                                      comm::CommMethod::P2P, policy));
        configs.push_back(schedConfig("lenet", 2,
                                      comm::CommMethod::NCCL, policy));
    }
    campaign::clearSimulationCache();
    const auto serial = campaign::runCampaign(configs, 1);
    campaign::clearSimulationCache();
    const auto parallel = campaign::runCampaign(configs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].digest, parallel[i].digest)
            << serial[i].key();
        EXPECT_NE(serial[i].digest, 0u);
    }
}

} // namespace
