/**
 * @file
 * Timing-plane tests for the P2P parameter server and the NCCL-like
 * ring collectives: serialization, scaling behavior, overheads, and
 * the paper's qualitative claims about when each method wins.
 */

#include <gtest/gtest.h>

#include <memory>

#include "comm/factory.hh"
#include "comm/nccl_communicator.hh"
#include "comm/p2p_parameter_server.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using comm::CommConfig;
using comm::CommContext;
using comm::CommMethod;

class CommTimingTest : public ::testing::Test
{
  protected:
    sim::EventQueue queue;
    hw::Fabric fabric{queue, hw::Topology::dgx1Volta()};
    profiling::Profiler prof;

    CommContext
    ctx(int gpus)
    {
        CommContext c;
        c.queue = &queue;
        c.fabric = &fabric;
        c.gpus = fabric.topology().gpuSet(gpus);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        c.profiler = &prof;
        return c;
    }

    /** Run one collective to completion; @return seconds. */
    double
    timed(comm::Communicator &comm, bool is_reduce, sim::Bytes bytes)
    {
        const sim::Tick start = queue.now();
        sim::Tick end = 0;
        if (is_reduce)
            comm.reduce(bytes, [&] { end = queue.now(); });
        else
            comm.broadcast(bytes, [&] { end = queue.now(); });
        queue.run();
        return sim::ticksToSec(end - start);
    }
};

TEST_F(CommTimingTest, SingleGpuP2pIsFree)
{
    comm::P2pParameterServer p2p(ctx(1));
    EXPECT_DOUBLE_EQ(timed(p2p, true, 100 << 20), 0.0);
    EXPECT_DOUBLE_EQ(timed(p2p, false, 100 << 20), 0.0);
    EXPECT_EQ(p2p.perCallHostOverhead(), 0u);
}

TEST_F(CommTimingTest, SingleGpuNcclStillRunsKernels)
{
    comm::NcclCommunicator nccl(ctx(1));
    EXPECT_GT(timed(nccl, true, 100 << 20), 0.0);
    EXPECT_GT(timed(nccl, false, 100 << 20), 0.0);
    EXPECT_GT(nccl.perCallHostOverhead(), 0u);
    // The kernels show up in the profiler like nvprof sees them.
    bool saw_reduce = false;
    for (const auto &k : prof.kernels())
        saw_reduce |= k.name == "ncclReduceKernel";
    EXPECT_TRUE(saw_reduce);
}

TEST_F(CommTimingTest, TwoGpuReduceApproachesLinkBandwidth)
{
    comm::P2pParameterServer p2p(ctx(2));
    const sim::Bytes bytes = 250u * 1000 * 1000; // 250 MB
    // GPU1 -> GPU0 over the doubled (50 GB/s) link: ~5 ms + kernel.
    const double secs = timed(p2p, true, bytes);
    EXPECT_NEAR(secs, 0.005, 0.002);
}

TEST_F(CommTimingTest, CollectivesSerializeOnOneCommunicator)
{
    comm::P2pParameterServer p2p(ctx(2));
    const sim::Bytes bytes = 100u * 1000 * 1000;
    sim::Tick end1 = 0, end2 = 0;
    p2p.reduce(bytes, [&] { end1 = queue.now(); });
    p2p.reduce(bytes, [&] { end2 = queue.now(); });
    queue.run();
    // Sequential, not parallel: the second takes about twice as long.
    EXPECT_NEAR(static_cast<double>(end2) / static_cast<double>(end1),
                2.0, 0.1);
}

TEST_F(CommTimingTest, OnIdleFiresAfterQueueDrains)
{
    comm::P2pParameterServer p2p(ctx(2));
    bool idle_seen = false;
    p2p.reduce(1 << 20, nullptr);
    p2p.onIdle([&] { idle_seen = true; });
    EXPECT_FALSE(idle_seen);
    queue.run();
    EXPECT_TRUE(idle_seen);
    EXPECT_TRUE(p2p.idle());
}

TEST_F(CommTimingTest, NcclRingUsesAllLinksConcurrently)
{
    // For a large payload on 8 GPUs, the pipelined ring should beat
    // the tree+fanout parameter server (the paper's 4/8-GPU NCCL
    // win for big networks).
    const sim::Bytes bytes = 100u * 1000 * 1000; // ~AlexNet size
    double p2p_secs, nccl_secs;
    {
        sim::EventQueue q;
        hw::Fabric f(q, hw::Topology::dgx1Volta());
        CommContext c;
        c.queue = &q;
        c.fabric = &f;
        c.gpus = f.topology().gpuSet(8);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        comm::P2pParameterServer p2p(c);
        sim::Tick end = 0;
        p2p.reduce(bytes, [&] { end = q.now(); });
        q.run();
        p2p_secs = sim::ticksToSec(end);
    }
    {
        sim::EventQueue q;
        hw::Fabric f(q, hw::Topology::dgx1Volta());
        CommContext c;
        c.queue = &q;
        c.fabric = &f;
        c.gpus = f.topology().gpuSet(8);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        comm::NcclCommunicator nccl(c);
        sim::Tick end = 0;
        nccl.reduce(bytes, [&] { end = q.now(); });
        q.run();
        nccl_secs = sim::ticksToSec(end);
    }
    EXPECT_LT(nccl_secs, p2p_secs);
}

TEST_F(CommTimingTest, NcclPipeliningBeatsSingleChunk)
{
    const sim::Bytes bytes = 64u << 20;
    CommConfig pipelined;
    pipelined.ringChunkBytes = 4u << 20;
    pipelined.maxChunks = 16;
    CommConfig single;
    single.ringChunkBytes = bytes; // one chunk: no pipelining
    single.maxChunks = 1;

    double t_pipe, t_single;
    {
        sim::EventQueue q;
        hw::Fabric f(q, hw::Topology::dgx1Volta());
        CommContext c;
        c.queue = &q;
        c.fabric = &f;
        c.gpus = f.topology().gpuSet(8);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        comm::NcclCommunicator nccl(c, pipelined);
        sim::Tick end = 0;
        nccl.reduce(bytes, [&] { end = q.now(); });
        q.run();
        t_pipe = sim::ticksToSec(end);
    }
    {
        sim::EventQueue q;
        hw::Fabric f(q, hw::Topology::dgx1Volta());
        CommContext c;
        c.queue = &q;
        c.fabric = &f;
        c.gpus = f.topology().gpuSet(8);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        comm::NcclCommunicator nccl(c, single);
        sim::Tick end = 0;
        nccl.reduce(bytes, [&] { end = q.now(); });
        q.run();
        t_single = sim::ticksToSec(end);
    }
    // 7 store-and-forward hops without pipelining vs a full pipeline:
    // expect a large gain.
    EXPECT_LT(t_pipe, 0.5 * t_single);
}

TEST_F(CommTimingTest, ChunkCountClamped)
{
    comm::NcclCommunicator nccl(ctx(4));
    EXPECT_EQ(nccl.chunksFor(0), 1);
    EXPECT_EQ(nccl.chunksFor(1), 1);
    EXPECT_EQ(nccl.chunksFor(1u << 30),
              nccl.config().maxChunks);
}

TEST_F(CommTimingTest, RingRootIsFirst)
{
    comm::NcclCommunicator nccl(ctx(8));
    ASSERT_EQ(nccl.ring().size(), 8u);
    EXPECT_EQ(nccl.ring().front(), 0);
}

TEST_F(CommTimingTest, FactoryBuildsBothMethods)
{
    auto p2p = comm::makeCommunicator(CommMethod::P2P, ctx(2));
    auto nccl = comm::makeCommunicator(CommMethod::NCCL, ctx(2));
    EXPECT_EQ(p2p->name(), "p2p");
    EXPECT_EQ(nccl->name(), "nccl");
    EXPECT_EQ(comm::parseCommMethod("device"), CommMethod::P2P);
    EXPECT_EQ(comm::parseCommMethod("nccl"), CommMethod::NCCL);
    EXPECT_THROW(comm::parseCommMethod("mpi"), sim::FatalError);
    EXPECT_STREQ(comm::commMethodName(CommMethod::NCCL), "nccl");
}

TEST_F(CommTimingTest, BadContextIsFatal)
{
    CommContext c;
    EXPECT_THROW(comm::P2pParameterServer{c}, sim::FatalError);
    c = ctx(2);
    c.gpus = {8}; // a CPU node
    EXPECT_THROW(comm::P2pParameterServer{c}, sim::FatalError);
}

/** Reduce time should grow sub-linearly with GPU count (tree). */
class P2pScalingSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(P2pScalingSweep, ReduceCompletesForAllGpuCounts)
{
    const int gpus = GetParam();
    sim::EventQueue q;
    hw::Fabric f(q, hw::Topology::dgx1Volta());
    CommContext c;
    c.queue = &q;
    c.fabric = &f;
    c.gpus = f.topology().gpuSet(gpus);
    c.gpuSpec = hw::GpuSpec::voltaV100();
    comm::P2pParameterServer p2p(c);
    bool done = false;
    p2p.reduce(10 << 20, [&] { done = true; });
    p2p.broadcast(10 << 20, nullptr);
    q.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(p2p.idle());
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, P2pScalingSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/** NCCL must complete for every paper GPU count as well. */
class NcclScalingSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(NcclScalingSweep, ReduceAndBroadcastComplete)
{
    const int gpus = GetParam();
    sim::EventQueue q;
    hw::Fabric f(q, hw::Topology::dgx1Volta());
    CommContext c;
    c.queue = &q;
    c.fabric = &f;
    c.gpus = f.topology().gpuSet(gpus);
    c.gpuSpec = hw::GpuSpec::voltaV100();
    comm::NcclCommunicator nccl(c);
    int done = 0;
    nccl.reduce(10 << 20, [&] { ++done; });
    nccl.broadcast(10 << 20, [&] { ++done; });
    q.run();
    EXPECT_EQ(done, 2);
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, NcclScalingSweep,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
