/**
 * @file
 * Hierarchical (two-level) collective tests over a simulated cluster:
 * factory dispatch, completion on ring and tree schedules, the exact
 * ring all-reduce IB payload, flow conservation across the NIC/switch
 * fabric, and a fully audited run.
 */

#include <gtest/gtest.h>

#include <memory>

#include "comm/factory.hh"
#include "comm/hierarchical_communicator.hh"
#include "hw/cluster.hh"
#include "hw/platform.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using comm::CommConfig;
using comm::CommContext;
using comm::CommMethod;
using comm::NetAlgo;

class HierarchicalTest : public ::testing::Test
{
  protected:
    hw::Platform plat = hw::makePlatform("dgx1v");
    sim::EventQueue queue;
    std::unique_ptr<hw::Cluster> cluster;
    std::unique_ptr<hw::Fabric> fabric;
    profiling::Profiler prof;

    /** Build an N-node cluster fabric and a context over
     * @p gpus_per_node GPUs on each node (node-major). */
    CommContext
    ctx(int nodes, int gpus_per_node)
    {
        cluster = std::make_unique<hw::Cluster>(
            hw::makeCluster(plat, nodes, "ib100"));
        fabric = std::make_unique<hw::Fabric>(
            queue, cluster->topology, plat.hostSpec);
        CommContext c;
        c.queue = &queue;
        c.fabric = fabric.get();
        c.gpus = cluster->gpuSet(gpus_per_node);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        c.profiler = &prof;
        return c;
    }

    static CommConfig
    cfg(int nodes, NetAlgo algo = NetAlgo::Ring)
    {
        CommConfig c;
        c.clusterNodes = nodes;
        c.netAlgo = algo;
        return c;
    }

    /** Sum of payload bytes moved over every IB link so far. */
    double
    ibLinkBytes() const
    {
        double total = 0;
        const auto &links = fabric->topology().links();
        for (std::size_t i = 0; i < links.size(); ++i) {
            if (links[i].type == hw::LinkType::IB)
                total += fabric->linkBytesMoved(i);
        }
        return total;
    }
};

TEST_F(HierarchicalTest, FactoryDispatchesOnClusterNodes)
{
    auto hier =
        comm::makeCommunicator(CommMethod::NCCL, ctx(2, 2), cfg(2));
    EXPECT_EQ(hier->name(), "hier-nccl-ring");
    auto flat =
        comm::makeCommunicator(CommMethod::NCCL, ctx(1, 2), cfg(1));
    EXPECT_EQ(flat->name(), "nccl");
    auto tree = comm::makeCommunicator(
        CommMethod::P2P, ctx(2, 2), cfg(2, NetAlgo::Tree));
    EXPECT_EQ(tree->name(), "hier-p2p-tree");
}

TEST_F(HierarchicalTest, NodeMajorSlicesAndRoots)
{
    comm::HierarchicalCommunicator hier(CommMethod::NCCL, ctx(4, 2),
                                        cfg(4));
    EXPECT_EQ(hier.gpusPerNode(), 2);
    ASSERT_EQ(hier.roots().size(), 4u);
    const std::vector<hw::NodeId> gpus = cluster->gpuSet(2);
    for (int k = 0; k < 4; ++k)
        EXPECT_EQ(hier.roots()[k], gpus[k * 2]) << "node " << k;
}

TEST_F(HierarchicalTest, CollectivesCompleteOnRing)
{
    comm::HierarchicalCommunicator hier(CommMethod::NCCL, ctx(2, 4),
                                        cfg(2));
    int done = 0;
    hier.reduce(16u << 20, [&] { ++done; });
    hier.broadcast(16u << 20, [&] { ++done; });
    hier.allReduce(16u << 20, [&] { ++done; });
    queue.run();
    EXPECT_EQ(done, 3);
    EXPECT_TRUE(hier.idle());
    EXPECT_GT(prof.copiedBytes("IB"), 0u);
}

TEST_F(HierarchicalTest, TreeHandlesNonPowerOfTwoNodes)
{
    comm::HierarchicalCommunicator hier(
        CommMethod::NCCL, ctx(3, 2), cfg(3, NetAlgo::Tree));
    int done = 0;
    hier.reduce(8u << 20, [&] { ++done; });
    hier.allReduce(8u << 20, [&] { ++done; });
    queue.run();
    EXPECT_EQ(done, 2);
}

TEST_F(HierarchicalTest, RingAllReduceMovesTheExactIbPayload)
{
    // Ring all-reduce over N node roots: reduce-scatter and
    // all-gather each run N-1 rounds of N concurrent shard
    // transfers, so total IB payload is 2*(N-1)*bytes when the
    // payload divides evenly.
    const int nodes = 4;
    const sim::Bytes bytes = 4u << 20;
    comm::HierarchicalCommunicator hier(CommMethod::NCCL,
                                        ctx(nodes, 1), cfg(nodes));
    hier.allReduce(bytes, nullptr);
    queue.run();
    EXPECT_EQ(prof.copiedBytes("IB"),
              sim::Bytes{2 * (nodes - 1) * bytes});
}

TEST_F(HierarchicalTest, FlowIsConservedAcrossTheSwitch)
{
    // Every inter-node copy is staged NIC -> switch -> NIC, crossing
    // exactly two IB links with the full payload on each, so the
    // bytes observed on the IB links must equal twice the recorded
    // IB copy payload. An over- or under-delivery on either hop
    // breaks the equality.
    const int nodes = 4;
    comm::HierarchicalCommunicator hier(CommMethod::NCCL,
                                        ctx(nodes, 2), cfg(nodes));
    hier.allReduce(12u << 20, nullptr);
    hier.reduce(3u << 20, nullptr);
    queue.run();
    const auto ib_payload =
        static_cast<double>(prof.copiedBytes("IB"));
    ASSERT_GT(ib_payload, 0.0);
    EXPECT_NEAR(ibLinkBytes(), 2.0 * ib_payload, 1.0);
}

TEST_F(HierarchicalTest, AuditedAllReduceHoldsEveryInvariant)
{
    CommContext c = ctx(2, 4);
    sim::Auditor *audit = fabric->enableAudit();
    comm::HierarchicalCommunicator hier(CommMethod::NCCL, c, cfg(2));
    hier.allReduce(16u << 20, nullptr);
    queue.run();
    audit->checkQuiescent(queue, fabric->flows());
    EXPECT_GT(audit->checksPerformed(), 0u);
    EXPECT_EQ(audit->violationCount(), 0u);
}

TEST_F(HierarchicalTest, RingAndTreeScheduleDifferently)
{
    // Four nodes are enough for the schedules to diverge: the ring
    // pipelines 2*(N-1) shard rounds while the tree moves the full
    // payload log2(N) times in each direction.
    const sim::Bytes bytes = 64u << 20;
    sim::Tick ring_end = 0, tree_end = 0;
    {
        comm::HierarchicalCommunicator hier(CommMethod::NCCL,
                                            ctx(4, 1), cfg(4));
        hier.allReduce(bytes, [&] { ring_end = queue.now(); });
        queue.run();
    }
    const sim::Bytes ring_ib = prof.copiedBytes("IB");
    {
        sim::EventQueue q2;
        hw::Cluster cl = hw::makeCluster(plat, 4, "ib100");
        hw::Fabric f2(q2, cl.topology, plat.hostSpec);
        profiling::Profiler p2;
        CommContext c;
        c.queue = &q2;
        c.fabric = &f2;
        c.gpus = cl.gpuSet(1);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        c.profiler = &p2;
        comm::HierarchicalCommunicator hier(CommMethod::NCCL, c,
                                            cfg(4, NetAlgo::Tree));
        hier.allReduce(bytes, [&] { tree_end = q2.now(); });
        q2.run();
        // Both schedules move 2*(N-1)*bytes in total at N=4; only
        // the round structure (and so the completion time) differs.
        EXPECT_EQ(p2.copiedBytes("IB"), ring_ib);
    }
    ASSERT_GT(ring_end, 0u);
    ASSERT_GT(tree_end, 0u);
    EXPECT_NE(ring_end, tree_end);
}

TEST_F(HierarchicalTest, BadShapesAreFatal)
{
    // GPU count not divisible by the node count.
    CommContext c = ctx(2, 2);
    c.gpus.pop_back();
    EXPECT_THROW(
        (comm::HierarchicalCommunicator{CommMethod::NCCL, c, cfg(2)}),
        sim::FatalError);
}

} // namespace
