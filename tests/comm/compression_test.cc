/**
 * @file
 * Tests on the gradient-compression subsystem (comm/compression.hh):
 * registry round-trips, closed-form wire-byte pins (including 1-byte
 * and non-divisor edges), the never-inflate invariant, wire-byte
 * conservation through audited runs across every scheduler policy and
 * communicator family, bit-exact `none` replay, and campaign digest
 * stability across thread counts.
 */

#include <gtest/gtest.h>

#include <vector>

#include "campaign/campaign.hh"
#include "campaign/record.hh"
#include "comm/compression.hh"
#include "core/trainer_base.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using comm::compressedWireBytes;
using comm::Compressor;

TEST(CompressorRegistry, NamesRoundTripThroughParse)
{
    const auto &registry = comm::compressorRegistry();
    ASSERT_EQ(registry.size(), 5u);
    for (const comm::CompressorInfo &info : registry) {
        EXPECT_EQ(comm::parseCompressor(info.name), info.comp);
        EXPECT_STREQ(comm::compressorName(info.comp), info.name);
    }
    // Registry order is presentation order; `none` leads so the
    // default is the first row of `dgxprof compressors`.
    EXPECT_EQ(registry.front().comp, Compressor::None);
}

TEST(CompressorRegistry, UnknownNameIsFatalWithSuggestion)
{
    EXPECT_THROW(comm::parseCompressor("topk"), sim::FatalError);
    EXPECT_THROW(comm::parseCompressor(""), sim::FatalError);
    // Transpositions are the common typo class; the Damerau edit
    // distance must surface the intended name even on 3-char names.
    try {
        comm::parseCompressor("dcg");
        FAIL() << "expected fatal";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("did you mean 'dgc'"),
                  std::string::npos);
    }
}

TEST(CompressorRegistry, KernelNamesCarryTheCompressor)
{
    EXPECT_EQ(comm::compressKernelName(Compressor::Dgc),
              "gradCompress_dgc");
    EXPECT_EQ(comm::decompressKernelName(Compressor::OneBit),
              "gradDecompress_onebit");
}

TEST(WireBytes, NoneIsIdentity)
{
    for (sim::Bytes p : {sim::Bytes(0), sim::Bytes(1), sim::Bytes(4),
                         sim::Bytes(1) << 20}) {
        EXPECT_EQ(compressedWireBytes(Compressor::None, p, 0.01), p);
    }
}

TEST(WireBytes, SparsifiersKeepIndexValuePairs)
{
    // 1 MiB = 262144 fp32 elements; 1% kept = 2622 (ceil) pairs of
    // (uint32 index, fp32 value) = 8 bytes each.
    const sim::Bytes mib = sim::Bytes(1) << 20;
    EXPECT_EQ(compressedWireBytes(Compressor::RandomK, mib, 0.01),
              sim::Bytes(2622 * 8));
    EXPECT_EQ(compressedWireBytes(Compressor::Dgc, mib, 0.01),
              sim::Bytes(2622 * 8));
    // 4% kept = ceil(10485.76) = 10486 pairs.
    EXPECT_EQ(compressedWireBytes(Compressor::Dgc, mib, 0.04),
              sim::Bytes(10486 * 8));
}

TEST(WireBytes, QuantizersPackOneBitPerElement)
{
    // 1 MiB: 262144 elements -> 32768 sign-bitmap bytes, plus one
    // fp32 scale (efsignsgd) or two centroids (onebit).
    const sim::Bytes mib = sim::Bytes(1) << 20;
    EXPECT_EQ(compressedWireBytes(Compressor::EfSignSgd, mib, 0.5),
              sim::Bytes(32768 + 4));
    EXPECT_EQ(compressedWireBytes(Compressor::OneBit, mib, 0.5),
              sim::Bytes(32768 + 8));
}

TEST(WireBytes, NonDivisorPayloadsRoundUp)
{
    // 1001 bytes = 251 elements (trailing partial word counts): the
    // bitmap needs ceil(251/8) = 32 bytes.
    EXPECT_EQ(compressedWireBytes(Compressor::EfSignSgd, 1001, 0.5),
              sim::Bytes(32 + 4));
    // 10% of 251 elements = ceil(25.1) = 26 pairs.
    EXPECT_EQ(compressedWireBytes(Compressor::Dgc, 1001, 0.1),
              sim::Bytes(26 * 8));
}

TEST(WireBytes, NeverInflatesAndNeverEmpties)
{
    // Tiny chunks where the header/pair overhead would dominate ship
    // raw; nonzero payloads never compress to nothing.
    for (Compressor comp :
         {Compressor::RandomK, Compressor::Dgc, Compressor::EfSignSgd,
          Compressor::OneBit}) {
        for (sim::Bytes p = 1; p <= 64; ++p) {
            const sim::Bytes wire = compressedWireBytes(comp, p, 0.01);
            EXPECT_LE(wire, p) << comm::compressorName(comp);
            EXPECT_GE(wire, 1u) << comm::compressorName(comp);
        }
        EXPECT_EQ(compressedWireBytes(comp, 0, 0.01), 0u);
    }
}

TEST(KernelCosts, EncodeAndDecodeStreamTheBuffers)
{
    const sim::Bytes payload = sim::Bytes(1) << 20;
    const sim::Bytes wire =
        compressedWireBytes(Compressor::Dgc, payload, 0.01);
    const auto enc =
        comm::compressKernelCost(Compressor::Dgc, payload, wire);
    const auto dec =
        comm::decompressKernelCost(Compressor::Dgc, payload, wire);
    // 8 flops per input element for the top-k selection.
    EXPECT_DOUBLE_EQ(enc.flops, 8.0 * 262144);
    EXPECT_DOUBLE_EQ(enc.bytes,
                     static_cast<double>(payload) +
                         static_cast<double>(wire));
    EXPECT_DOUBLE_EQ(dec.flops, 2.0 * 262144);
    EXPECT_DOUBLE_EQ(dec.bytes,
                     static_cast<double>(wire) +
                         static_cast<double>(payload));
    // `none` costs nothing: it must add zero events to the stream.
    const auto none =
        comm::compressKernelCost(Compressor::None, payload, payload);
    EXPECT_DOUBLE_EQ(none.flops, 0.0);
    EXPECT_DOUBLE_EQ(none.bytes, 0.0);
}

core::TrainConfig
compConfig(const std::string &model, int gpus,
           comm::CommMethod method, comm::SchedulerPolicy policy,
           Compressor comp)
{
    core::TrainConfig cfg;
    cfg.model = model;
    cfg.numGpus = gpus;
    cfg.batchPerGpu = 16;
    cfg.method = method;
    cfg.overlapBpWu = true;
    cfg.commConfig.scheduler = policy;
    cfg.commConfig.compression = comp;
    return cfg;
}

/**
 * Compression decides how many bytes each chunk puts on the wire; it
 * must never lose or duplicate chunks. Every (scheduler, method,
 * compressor) combination has to finish a clean audited run, and the
 * sparsifiers/quantizers must actually shrink the measured wire.
 */
TEST(CompressionFlow, AuditedAcrossSchedulersAndMethods)
{
    for (auto method :
         {comm::CommMethod::P2P, comm::CommMethod::NCCL}) {
        for (auto policy : {comm::SchedulerPolicy::Fifo,
                            comm::SchedulerPolicy::Priority,
                            comm::SchedulerPolicy::Partitioned}) {
            double rawBytes = -1;
            for (Compressor comp :
                 {Compressor::None, Compressor::Dgc,
                  Compressor::EfSignSgd}) {
                core::TrainConfig cfg = compConfig(
                    "alexnet", 4, method, policy, comp);
                cfg.audit = true;
                const core::TrainReport rep =
                    core::TrainerBase::simulate(cfg);
                EXPECT_TRUE(rep.audited);
                EXPECT_EQ(rep.auditViolations, 0u)
                    << comm::compressorName(comp);
                if (comp == Compressor::None)
                    rawBytes = rep.interGpuBytesPerIter;
                else
                    EXPECT_LT(rep.interGpuBytesPerIter, rawBytes)
                        << comm::compressorName(comp);
            }
        }
    }
}

/** The hierarchical cluster path compresses once, at the outer
 * layer; inner-node collectives must not double-compress, and the
 * audited multi-node run must stay clean. */
TEST(CompressionFlow, HierarchicalClusterRunIsAuditedAndShrinks)
{
    double rawInterNode = -1;
    for (Compressor comp : {Compressor::None, Compressor::Dgc}) {
        core::TrainConfig cfg =
            compConfig("alexnet", 4, comm::CommMethod::NCCL,
                       comm::SchedulerPolicy::Fifo, comp);
        cfg.nodes = 2;
        cfg.audit = true;
        const core::TrainReport rep = core::TrainerBase::simulate(cfg);
        EXPECT_TRUE(rep.audited);
        EXPECT_EQ(rep.auditViolations, 0u);
        if (comp == Compressor::None)
            rawInterNode = rep.interNodeBytesPerIter;
        else
            EXPECT_LT(rep.interNodeBytesPerIter, rawInterNode);
    }
}

/** `--compression none` must replay the pre-compression event stream
 * bit-exactly: not one event more, the identical digest. */
TEST(CompressionFlow, NoneReplaysLegacyDigest)
{
    core::TrainConfig legacy;
    legacy.model = "alexnet";
    legacy.numGpus = 4;
    legacy.batchPerGpu = 16;
    legacy.method = comm::CommMethod::NCCL;
    core::TrainConfig none = legacy;
    none.commConfig.compression = Compressor::None;
    none.commConfig.compressRatio = 0.25; // ignored by `none`
    const auto a = core::TrainerBase::simulate(legacy);
    const auto b = core::TrainerBase::simulate(none);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_NE(a.digest, 0u);
}

/** A single GPU has no wire: the compressor must change nothing. */
TEST(CompressionFlow, SingleGpuIsUntouched)
{
    core::TrainConfig raw = compConfig(
        "lenet", 1, comm::CommMethod::NCCL,
        comm::SchedulerPolicy::Fifo, Compressor::None);
    core::TrainConfig comp = raw;
    comp.commConfig.compression = Compressor::Dgc;
    EXPECT_EQ(core::TrainerBase::simulate(raw).digest,
              core::TrainerBase::simulate(comp).digest);
}

/** Same compressed grid, different thread counts: digests must not
 * move (the determinism gate behind results/baseline_zoo.json). */
TEST(CompressionDeterminism, DigestsStableAcrossCampaignJobs)
{
    std::vector<core::TrainConfig> configs;
    for (Compressor comp :
         {Compressor::RandomK, Compressor::Dgc, Compressor::OneBit}) {
        configs.push_back(compConfig("alexnet", 4,
                                     comm::CommMethod::NCCL,
                                     comm::SchedulerPolicy::Fifo,
                                     comp));
        configs.push_back(compConfig(
            "lenet", 2, comm::CommMethod::P2P,
            comm::SchedulerPolicy::Partitioned, comp));
    }
    campaign::clearSimulationCache();
    const auto serial = campaign::runCampaign(configs, 1);
    campaign::clearSimulationCache();
    const auto parallel = campaign::runCampaign(configs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].digest, parallel[i].digest)
            << serial[i].key();
        EXPECT_NE(serial[i].digest, 0u);
    }
}

/** The compression axes survive JSON and key() round-trips, and the
 * `none` default is omitted so legacy baselines parse unchanged. */
TEST(CompressionRecord, JsonAndKeyCarryTheAxes)
{
    // Only record-carried knobs here: toConfig() must reproduce the
    // run from the serialized record alone.
    core::TrainConfig cfg;
    cfg.model = "alexnet";
    cfg.numGpus = 2;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::NCCL;
    cfg.commConfig.compression = Compressor::Dgc;
    cfg.commConfig.compressRatio = 0.05;
    const campaign::RunRecord rec =
        campaign::recordFromReport(core::TrainerBase::simulate(cfg));
    EXPECT_EQ(rec.compression, "dgc");
    EXPECT_DOUBLE_EQ(rec.compressRatio, 0.05);
    EXPECT_NE(rec.key().find("dgc"), std::string::npos);

    const auto parsed = campaign::recordsFromJson(
        campaign::recordsToJson({rec}));
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0], rec);
    // The reproduced config re-runs to the identical digest.
    const auto rerun =
        core::TrainerBase::simulate(parsed[0].toConfig());
    EXPECT_EQ(rerun.digest, rec.digest);

    // An uncompressed record serializes without the axes at all.
    core::TrainConfig raw = cfg;
    raw.commConfig.compression = Compressor::None;
    raw.commConfig.compressRatio = 0.01;
    const campaign::RunRecord rawRec =
        campaign::recordFromReport(core::TrainerBase::simulate(raw));
    const std::string json = campaign::recordsToJson({rawRec});
    EXPECT_EQ(json.find("compression"), std::string::npos);
    EXPECT_EQ(rawRec.key().find("none"), std::string::npos);
}

/** configKey must separate what the simulator distinguishes: the
 * compressor and, for the sparsifiers, the kept ratio. */
TEST(CompressionRecord, ConfigKeySeparatesCompressorAndRatio)
{
    core::TrainConfig a = compConfig(
        "alexnet", 2, comm::CommMethod::NCCL,
        comm::SchedulerPolicy::Fifo, Compressor::Dgc);
    core::TrainConfig b = a;
    b.commConfig.compression = Compressor::RandomK;
    core::TrainConfig c = a;
    c.commConfig.compressRatio = 0.25;
    EXPECT_NE(campaign::configKey(a), campaign::configKey(b));
    EXPECT_NE(campaign::configKey(a), campaign::configKey(c));
}

} // namespace
