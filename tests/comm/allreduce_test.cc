/**
 * @file
 * Tests for the fused AllReduce extension: timing behavior of the
 * ring all-reduce, data-plane correctness, and the trainer-level
 * allreduce + gradient-fusion modes.
 */

#include <gtest/gtest.h>

#include "comm/nccl_communicator.hh"
#include "comm/p2p_parameter_server.hh"
#include "core/trainer.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using comm::CommContext;

class AllReduceTest : public ::testing::Test
{
  protected:
    sim::EventQueue queue;
    hw::Fabric fabric{queue, hw::Topology::dgx1Volta()};

    CommContext
    ctx(int gpus)
    {
        CommContext c;
        c.queue = &queue;
        c.fabric = &fabric;
        c.gpus = fabric.topology().gpuSet(gpus);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        return c;
    }

    double
    timedAllReduce(comm::Communicator &comm, sim::Bytes bytes)
    {
        sim::Tick end = 0;
        comm.allReduce(bytes, [&] { end = queue.now(); });
        queue.run();
        return sim::ticksToSec(end);
    }
};

TEST_F(AllReduceTest, SingleGpuRunsOneKernel)
{
    comm::NcclCommunicator nccl(ctx(1));
    EXPECT_GT(timedAllReduce(nccl, 64 << 20), 0.0);
}

TEST_F(AllReduceTest, RingAllReduceBeatsReducePlusBroadcast)
{
    // 2(N-1)/N x S per GPU beats 2 full ring passes of S.
    const sim::Bytes bytes = 100u * 1000 * 1000;
    double fused, two_pass;
    {
        sim::EventQueue q;
        hw::Fabric f(q, hw::Topology::dgx1Volta());
        CommContext c;
        c.queue = &q;
        c.fabric = &f;
        c.gpus = f.topology().gpuSet(8);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        comm::NcclCommunicator nccl(c);
        sim::Tick end = 0;
        nccl.allReduce(bytes, [&] { end = q.now(); });
        q.run();
        fused = sim::ticksToSec(end);
    }
    {
        sim::EventQueue q;
        hw::Fabric f(q, hw::Topology::dgx1Volta());
        CommContext c;
        c.queue = &q;
        c.fabric = &f;
        c.gpus = f.topology().gpuSet(8);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        comm::NcclCommunicator nccl(c);
        sim::Tick end = 0;
        nccl.reduce(bytes, nullptr);
        nccl.broadcast(bytes, [&] { end = q.now(); });
        q.run();
        two_pass = sim::ticksToSec(end);
    }
    EXPECT_LT(fused, two_pass);
}

TEST_F(AllReduceTest, P2pFallsBackToReduceThenBroadcast)
{
    comm::P2pParameterServer p2p(ctx(4));
    const double fused = timedAllReduce(p2p, 50 << 20);
    EXPECT_GT(fused, 0.0);
}

TEST_F(AllReduceTest, AllReduceOpsSerializeAndComplete)
{
    comm::NcclCommunicator nccl(ctx(4));
    int done = 0;
    for (int i = 0; i < 5; ++i)
        nccl.allReduce(4 << 20, [&] { ++done; });
    queue.run();
    EXPECT_EQ(done, 5);
    EXPECT_TRUE(nccl.idle());
}

TEST_F(AllReduceTest, DataPlaneProducesSumEverywhere)
{
    for (int gpus : {2, 4, 8}) {
        comm::NcclCommunicator nccl(ctx(gpus));
        comm::P2pParameterServer p2p(ctx(gpus));
        for (int method = 0; method < 2; ++method) {
            std::vector<std::vector<float>> bufs(gpus);
            std::vector<float> want(17, 0.0f);
            for (int w = 0; w < gpus; ++w) {
                for (int i = 0; i < 17; ++i) {
                    bufs[w].push_back(0.5f * w - 0.25f * i);
                    want[i] += bufs[w][i];
                }
            }
            if (method == 0)
                nccl.allReduceData(bufs);
            else
                p2p.allReduceData(bufs);
            for (int w = 0; w < gpus; ++w) {
                for (int i = 0; i < 17; ++i)
                    EXPECT_NEAR(bufs[w][i], want[i], 1e-3)
                        << gpus << " gpus, method " << method;
            }
        }
    }
}

TEST(AllReduceTrainerTest, AllReduceHelpsBigBucketsHurtsSmallOnes)
{
    // AlexNet (8 huge buckets) gains from the fused collective;
    // ResNet (107 small ones) loses to lock-step latency unless the
    // buckets are fused — the modern-stack bucketing lesson.
    core::TrainConfig cfg;
    cfg.numGpus = 8;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::NCCL;

    cfg.model = "alexnet";
    const double alex_base =
        core::Trainer::simulate(cfg).epochSeconds;
    cfg.useAllReduce = true;
    const double alex_ar = core::Trainer::simulate(cfg).epochSeconds;
    EXPECT_LT(alex_ar, alex_base);

    cfg.model = "resnet-50";
    cfg.useAllReduce = false;
    const double res_base = core::Trainer::simulate(cfg).epochSeconds;
    cfg.useAllReduce = true;
    const double res_ar = core::Trainer::simulate(cfg).epochSeconds;
    EXPECT_GT(res_ar, res_base);
    cfg.bucketFusionMB = 16.0;
    const double res_fused = core::Trainer::simulate(cfg).epochSeconds;
    EXPECT_LT(res_fused, res_ar);
    EXPECT_LT(res_fused, res_base);
}

TEST(AllReduceTrainerTest, FusionReducesMessageCount)
{
    core::TrainConfig cfg;
    cfg.model = "inception-v3";
    cfg.numGpus = 4;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::NCCL;
    cfg.measuredIterations = 1;

    core::Trainer fine(cfg);
    fine.run();
    const auto fine_calls =
        fine.profiler().apiSummary(); // ncclReduce per bucket
    std::uint64_t fine_reduces = 0;
    for (const auto &row : fine_calls) {
        if (row.name == "ncclReduce")
            fine_reduces = row.calls;
    }

    cfg.bucketFusionMB = 8.0;
    core::Trainer fused(cfg);
    fused.run();
    std::uint64_t fused_reduces = 0;
    for (const auto &row : fused.profiler().apiSummary()) {
        if (row.name == "ncclReduce")
            fused_reduces = row.calls;
    }
    EXPECT_GT(fine_reduces, 100u);
    EXPECT_LT(fused_reduces, 20u);
    EXPECT_GT(fused_reduces, 0u);
}

TEST(AllReduceTrainerTest, FusionPreservesTotalBytes)
{
    core::TrainConfig cfg;
    cfg.model = "resnet-50";
    cfg.numGpus = 2;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::P2P;
    cfg.measuredIterations = 1;

    core::Trainer fine(cfg);
    const double fine_bytes = fine.run().interGpuBytesPerIter;

    cfg.bucketFusionMB = 32.0;
    core::Trainer fused(cfg);
    const double fused_bytes = fused.run().interGpuBytesPerIter;
    // Same gradient volume moves either way (fusion only batches it).
    EXPECT_NEAR(fused_bytes, fine_bytes, 0.01 * fine_bytes);
}

} // namespace
