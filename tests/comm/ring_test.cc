/**
 * @file
 * Tests for NVLink ring construction on the DGX-1 topology.
 */

#include <gtest/gtest.h>

#include "comm/ring.hh"

namespace {

using namespace dgxsim;
using comm::findNvlinkRing;

class RingTest : public ::testing::Test
{
  protected:
    hw::Topology topo = hw::Topology::dgx1Volta();

    /** Check every consecutive pair (and the wrap) is NVLinked. */
    void
    expectValidRing(const std::vector<hw::NodeId> &ring,
                    std::size_t expected_size)
    {
        ASSERT_EQ(ring.size(), expected_size);
        for (std::size_t i = 0; i < ring.size(); ++i) {
            const hw::NodeId a = ring[i];
            const hw::NodeId b = ring[(i + 1) % ring.size()];
            if (ring.size() == 2 && i == 1)
                break; // 2-rings reuse the one link both ways
            EXPECT_TRUE(
                topo.directLink(a, b, hw::LinkType::NVLink).has_value())
                << "hop " << a << "->" << b;
        }
    }
};

TEST_F(RingTest, SingleGpuRingIsTrivial)
{
    EXPECT_EQ(findNvlinkRing(topo, {3}), (std::vector<hw::NodeId>{3}));
}

TEST_F(RingTest, TwoGpuRingUsesDirectLink)
{
    expectValidRing(findNvlinkRing(topo, {0, 1}), 2);
}

TEST_F(RingTest, TwoGpusWithoutLinkHaveNoRing)
{
    EXPECT_TRUE(findNvlinkRing(topo, {3, 4}).empty());
}

TEST_F(RingTest, FourGpuRingExists)
{
    expectValidRing(findNvlinkRing(topo, {0, 1, 2, 3}), 4);
}

TEST_F(RingTest, EightGpuRingExistsOnHybridCubeMesh)
{
    expectValidRing(findNvlinkRing(topo, {0, 1, 2, 3, 4, 5, 6, 7}), 8);
}

TEST_F(RingTest, RingStartsAtFirstGpu)
{
    const auto ring = findNvlinkRing(topo, {0, 1, 2, 3, 4, 5, 6, 7});
    ASSERT_FALSE(ring.empty());
    EXPECT_EQ(ring.front(), 0);
}

TEST_F(RingTest, RingVisitsEveryGpuOnce)
{
    auto ring = findNvlinkRing(topo, {0, 1, 2, 3, 4, 5, 6, 7});
    std::sort(ring.begin(), ring.end());
    EXPECT_EQ(ring, (std::vector<hw::NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_F(RingTest, PcieOnlyTopologyHasNoNvlinkRing)
{
    hw::Topology pcie = hw::Topology::pcieOnly8Gpu();
    EXPECT_TRUE(findNvlinkRing(pcie, {0, 1, 2, 3}).empty());
}

TEST_F(RingTest, SubsetRingsExistForAllPaperGpuCounts)
{
    for (int count : {1, 2, 4, 8}) {
        const auto gpus = topo.gpuSet(count);
        EXPECT_FALSE(findNvlinkRing(topo, gpus).empty())
            << count << " GPUs";
    }
}

} // namespace
