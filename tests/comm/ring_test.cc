/**
 * @file
 * Tests for NVLink ring construction on the DGX-1 topology.
 */

#include <gtest/gtest.h>

#include "comm/ring.hh"
#include "hw/platform.hh"

namespace {

using namespace dgxsim;
using comm::findNvlinkRing;

class RingTest : public ::testing::Test
{
  protected:
    hw::Topology topo = hw::Topology::dgx1Volta();

    /** Check every consecutive pair (and the wrap) is NVLinked. */
    void
    expectValidRing(const std::vector<hw::NodeId> &ring,
                    std::size_t expected_size)
    {
        ASSERT_EQ(ring.size(), expected_size);
        for (std::size_t i = 0; i < ring.size(); ++i) {
            const hw::NodeId a = ring[i];
            const hw::NodeId b = ring[(i + 1) % ring.size()];
            if (ring.size() == 2 && i == 1)
                break; // 2-rings reuse the one link both ways
            EXPECT_TRUE(
                topo.directLink(a, b, hw::LinkType::NVLink).has_value())
                << "hop " << a << "->" << b;
        }
    }
};

TEST_F(RingTest, SingleGpuRingIsTrivial)
{
    EXPECT_EQ(findNvlinkRing(topo, {3}), (std::vector<hw::NodeId>{3}));
}

TEST_F(RingTest, TwoGpuRingUsesDirectLink)
{
    expectValidRing(findNvlinkRing(topo, {0, 1}), 2);
}

TEST_F(RingTest, TwoGpusWithoutLinkHaveNoRing)
{
    EXPECT_TRUE(findNvlinkRing(topo, {3, 4}).empty());
}

TEST_F(RingTest, FourGpuRingExists)
{
    expectValidRing(findNvlinkRing(topo, {0, 1, 2, 3}), 4);
}

TEST_F(RingTest, EightGpuRingExistsOnHybridCubeMesh)
{
    expectValidRing(findNvlinkRing(topo, {0, 1, 2, 3, 4, 5, 6, 7}), 8);
}

TEST_F(RingTest, RingStartsAtFirstGpu)
{
    const auto ring = findNvlinkRing(topo, {0, 1, 2, 3, 4, 5, 6, 7});
    ASSERT_FALSE(ring.empty());
    EXPECT_EQ(ring.front(), 0);
}

TEST_F(RingTest, RingVisitsEveryGpuOnce)
{
    auto ring = findNvlinkRing(topo, {0, 1, 2, 3, 4, 5, 6, 7});
    std::sort(ring.begin(), ring.end());
    EXPECT_EQ(ring, (std::vector<hw::NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_F(RingTest, PcieOnlyTopologyHasNoNvlinkRing)
{
    hw::Topology pcie = hw::Topology::pcieOnly8Gpu();
    EXPECT_TRUE(findNvlinkRing(pcie, {0, 1, 2, 3}).empty());
}

TEST_F(RingTest, SubsetRingsExistForAllPaperGpuCounts)
{
    for (int count : {1, 2, 4, 8}) {
        const auto gpus = topo.gpuSet(count);
        EXPECT_FALSE(findNvlinkRing(topo, gpus).empty())
            << count << " GPUs";
    }
}

TEST_F(RingTest, Pcie8PlatformNeverYieldsARing)
{
    // The no-NVLink platform has no Hamiltonian cycle for any subset
    // of two or more GPUs; callers fall back to the given order and
    // the fabric host-stages every hop.
    const hw::Topology pcie = hw::makePlatform("pcie8").topology;
    for (int count : {2, 3, 4, 8})
        EXPECT_TRUE(findNvlinkRing(pcie, pcie.gpuSet(count)).empty())
            << count << " GPUs";
    EXPECT_EQ(findNvlinkRing(pcie, {5}),
              (std::vector<hw::NodeId>{5}));
}

TEST_F(RingTest, Dgx2OddSubsetsRingThroughTheCrossbar)
{
    // NVSwitch makes every GPU pair NVLink-connected, so rings exist
    // for subsets the cube-mesh cannot serve — odd sizes, arbitrary
    // members, and the full 16.
    const hw::Topology dgx2 = hw::makePlatform("dgx2").topology;
    const std::vector<std::vector<hw::NodeId>> subsets = {
        {0, 1, 2}, {1, 3, 5, 7, 9}, {2, 6, 11}, dgx2.gpuSet(16)};
    for (const auto &gpus : subsets) {
        auto ring = findNvlinkRing(dgx2, gpus);
        ASSERT_EQ(ring.size(), gpus.size());
        for (std::size_t i = 0; i < ring.size(); ++i) {
            EXPECT_TRUE(dgx2.nvlinkConnected(
                ring[i], ring[(i + 1) % ring.size()]));
        }
        std::sort(ring.begin(), ring.end());
        EXPECT_EQ(ring, gpus);
    }
}

TEST_F(RingTest, EveryPlatformRingHopIsNvlinkConnected)
{
    // Property over the whole registry: whatever subset findNvlinkRing
    // accepts, each consecutive hop (including the wrap) must be an
    // NVLink path with no GPU relay — that is the ring's contract.
    for (const std::string &name : hw::platformNames()) {
        const hw::Topology plat = hw::makePlatform(name).topology;
        for (int count = 1; count <= plat.numGpus(); ++count) {
            const auto gpus = plat.gpuSet(count);
            auto ring = findNvlinkRing(plat, gpus);
            if (ring.empty())
                continue; // fallback case; nothing to validate
            ASSERT_EQ(ring.size(), gpus.size()) << name;
            for (std::size_t i = 0; i < ring.size(); ++i) {
                EXPECT_TRUE(plat.nvlinkConnected(
                    ring[i], ring[(i + 1) % ring.size()]))
                    << name << ": hop " << ring[i] << "->"
                    << ring[(i + 1) % ring.size()];
            }
            std::sort(ring.begin(), ring.end());
            EXPECT_EQ(ring, gpus) << name;
        }
    }
}

} // namespace
