/**
 * @file
 * Regression tests for NCCL edge cases: sub-2-byte dual-ring
 * collectives must not run an empty reversed-ring pass, and copy
 * records must expose the protocol-inflated wire bytes alongside the
 * payload so durations and byte counts stay consistent.
 */

#include <gtest/gtest.h>

#include "comm/nccl_communicator.hh"
#include "profiling/profiler.hh"
#include "sim/auditor.hh"

namespace {

using namespace dgxsim;
using comm::CommConfig;
using comm::CommContext;

struct Bench
{
    sim::EventQueue q;
    hw::Fabric fabric{q, hw::Topology::dgx1Volta()};
    profiling::Profiler prof;
    std::unique_ptr<comm::NcclCommunicator> nccl;

    explicit Bench(int gpus, CommConfig cfg = {})
    {
        CommContext c;
        c.queue = &q;
        c.fabric = &fabric;
        c.gpus = fabric.topology().gpuSet(gpus);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        c.profiler = &prof;
        cfg.audit = true;
        nccl = std::make_unique<comm::NcclCommunicator>(c, cfg);
    }
};

std::size_t
kernelCount(const Bench &b, const std::string &name)
{
    std::size_t n = 0;
    for (const auto &k : b.prof.kernels())
        n += k.name == name;
    return n;
}

TEST(NcclFixesTest, TinyDualRingReduceSkipsEmptyHalf)
{
    // bytes/2 == 0: the reversed ring would carry nothing, yet the
    // old code ran a full pass of hop latencies and kernels for it.
    for (sim::Bytes bytes : {sim::Bytes(0), sim::Bytes(1)}) {
        CommConfig cfg;
        cfg.ncclRings = 2;
        Bench b(4, cfg);
        bool done = false;
        b.nccl->reduce(bytes, [&] { done = true; });
        b.q.run();
        EXPECT_TRUE(done);
        // One single-direction pass over a 4-GPU ring: one kernel
        // per hop, path length 4 -> 3 hops (one chunk).
        EXPECT_EQ(kernelCount(b, "ncclReduceKernel"), 3u)
            << bytes << " bytes";
    }
}

TEST(NcclFixesTest, TinyDualRingBroadcastSkipsEmptyHalf)
{
    CommConfig cfg;
    cfg.ncclRings = 2;
    Bench b(4, cfg);
    bool done = false;
    b.nccl->broadcast(1, [&] { done = true; });
    b.q.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(kernelCount(b, "ncclBroadcastKernel"), 3u);
}

TEST(NcclFixesTest, TinyDualRingMatchesSingleRingTiming)
{
    auto timed = [](int rings) {
        CommConfig cfg;
        cfg.ncclRings = rings;
        Bench b(8, cfg);
        sim::Tick end = 0;
        b.nccl->reduce(1, [&] { end = b.q.now(); });
        b.q.run();
        return end;
    };
    // With the empty half skipped, a 1-byte dual-ring reduce costs
    // exactly what the single-ring one does.
    EXPECT_EQ(timed(2), timed(1));
}

TEST(NcclFixesTest, CopyRecordsCarryWireBytes)
{
    CommConfig cfg;
    cfg.ncclLinkEfficiency = 0.75;
    Bench b(4, cfg);
    const sim::Bytes payload = 3 << 20;
    bool done = false;
    b.nccl->reduce(payload, [&] { done = true; });
    b.q.run();
    ASSERT_TRUE(done);

    const auto nccl_payload = b.prof.copiedBytes("NCCL");
    const auto nccl_wire = b.prof.copiedWireBytes("NCCL");
    // Payload accounting is unchanged: 3 hops x payload.
    EXPECT_EQ(nccl_payload, 3u * payload);
    // Wire bytes reflect the protocol inflation of 1/efficiency.
    EXPECT_GT(nccl_wire, nccl_payload);
    const double ratio = static_cast<double>(nccl_wire) /
                         static_cast<double>(nccl_payload);
    EXPECT_NEAR(ratio, 1.0 / 0.75, 0.01);
    // Every record is self-consistent (also enforced by the auditor
    // attached via cfg.audit).
    for (const auto &c : b.prof.copies()) {
        EXPECT_GE(c.wireBytes, c.bytes);
        EXPECT_GE(c.end, c.start);
    }
}

TEST(NcclFixesTest, AllReduceRecordsWireBytes)
{
    CommConfig cfg;
    cfg.ncclLinkEfficiency = 0.8;
    Bench b(4, cfg);
    bool done = false;
    b.nccl->allReduce(8 << 20, [&] { done = true; });
    b.q.run();
    ASSERT_TRUE(done);
    const auto payload = b.prof.copiedBytes("NCCL");
    const auto wire = b.prof.copiedWireBytes("NCCL");
    ASSERT_GT(payload, 0u);
    EXPECT_NEAR(static_cast<double>(wire) /
                    static_cast<double>(payload),
                1.0 / 0.8, 0.01);
}

TEST(NcclFixesTest, AuditedCollectivesRunCleanly)
{
    // Large dual-ring collectives under the strict auditor: the run
    // completing is the assertion (violations throw).
    CommConfig cfg;
    cfg.ncclRings = 2;
    Bench b(8, cfg);
    int done = 0;
    b.nccl->reduce(32 << 20, [&] { ++done; });
    b.nccl->broadcast(32 << 20, [&] { ++done; });
    b.nccl->allReduce(32 << 20, [&] { ++done; });
    b.q.run();
    EXPECT_EQ(done, 3);
    ASSERT_NE(b.fabric.auditor(), nullptr);
    EXPECT_GT(b.fabric.auditor()->checksPerformed(), 0u);
    EXPECT_EQ(b.fabric.auditor()->violationCount(), 0u);
}

} // namespace
