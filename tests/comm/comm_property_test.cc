/**
 * @file
 * Property sweeps on the communication library: data-plane agreement
 * across methods for many sizes, timing monotonicity, and invariant
 * relations among collectives.
 */

#include <gtest/gtest.h>

#include "comm/nccl_communicator.hh"
#include "comm/p2p_parameter_server.hh"

namespace {

using namespace dgxsim;
using comm::CommContext;

CommContext
makeCtx(sim::EventQueue &q, hw::Fabric &f, int gpus)
{
    CommContext c;
    c.queue = &q;
    c.fabric = &f;
    c.gpus = f.topology().gpuSet(gpus);
    c.gpuSpec = hw::GpuSpec::voltaV100();
    return c;
}

/** Deterministic float filler. */
std::vector<std::vector<float>>
makeBuffers(int workers, int elems, int seed)
{
    std::vector<std::vector<float>> bufs(workers);
    for (int w = 0; w < workers; ++w) {
        for (int i = 0; i < elems; ++i) {
            bufs[w].push_back(
                0.001f * ((seed * 2654435761u + w * 97 + i * 13) %
                          2048) -
                1.0f);
        }
    }
    return bufs;
}

class SizeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SizeSweep, MethodsAgreeOnReducedValues)
{
    const auto [gpus, elems] = GetParam();
    sim::EventQueue q;
    hw::Fabric f(q, hw::Topology::dgx1Volta());
    comm::P2pParameterServer p2p(makeCtx(q, f, gpus));
    comm::NcclCommunicator nccl(makeCtx(q, f, gpus));

    auto a = makeBuffers(gpus, elems, gpus * 1000 + elems);
    auto b = a;
    p2p.reduceData(a);
    nccl.reduceData(b);
    for (int i = 0; i < elems; ++i)
        EXPECT_NEAR(a[0][i], b[0][i], 1e-3) << i;
}

INSTANTIATE_TEST_SUITE_P(
    GpusBySize, SizeSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(1, 7, 64, 1000)));

class TimingSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TimingSweep, CollectiveTimeMonotoneInBytes)
{
    const int gpus = GetParam();
    double prev = 0;
    for (sim::Bytes bytes = 1 << 16; bytes <= (64u << 20); bytes *= 8) {
        sim::EventQueue q;
        hw::Fabric f(q, hw::Topology::dgx1Volta());
        comm::NcclCommunicator nccl(makeCtx(q, f, gpus));
        sim::Tick end = 0;
        nccl.reduce(bytes, [&] { end = q.now(); });
        q.run();
        const double secs = sim::ticksToSec(end);
        EXPECT_GT(secs, prev) << bytes;
        prev = secs;
    }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, TimingSweep,
                         ::testing::Values(2, 4, 8));

TEST(CommInvariantTest, AllReduceNoSlowerThanReducePlusBroadcastNccl)
{
    for (int gpus : {4, 8}) {
        for (sim::Bytes bytes : {sim::Bytes(1) << 20,
                                 sim::Bytes(32) << 20}) {
            double fused, split;
            {
                sim::EventQueue q;
                hw::Fabric f(q, hw::Topology::dgx1Volta());
                comm::NcclCommunicator nccl(makeCtx(q, f, gpus));
                sim::Tick end = 0;
                nccl.allReduce(bytes, [&] { end = q.now(); });
                q.run();
                fused = sim::ticksToSec(end);
            }
            {
                sim::EventQueue q;
                hw::Fabric f(q, hw::Topology::dgx1Volta());
                comm::NcclCommunicator nccl(makeCtx(q, f, gpus));
                sim::Tick end = 0;
                nccl.reduce(bytes, nullptr);
                nccl.broadcast(bytes, [&] { end = q.now(); });
                q.run();
                split = sim::ticksToSec(end);
            }
            EXPECT_LE(fused, split * 1.05)
                << gpus << " gpus, " << bytes << " bytes";
        }
    }
}

TEST(CommInvariantTest, MoreGpusNeverSpeedUpAFixedReduce)
{
    // A single reduction of fixed bytes can only slow down (or stay
    // flat) as the ring/tree grows.
    for (bool use_nccl : {false, true}) {
        double prev = 0;
        for (int gpus : {2, 4, 8}) {
            sim::EventQueue q;
            hw::Fabric f(q, hw::Topology::dgx1Volta());
            sim::Tick end = 0;
            if (use_nccl) {
                comm::NcclCommunicator nccl(makeCtx(q, f, gpus));
                nccl.reduce(16 << 20, [&] { end = q.now(); });
                q.run();
            } else {
                comm::P2pParameterServer p2p(makeCtx(q, f, gpus));
                p2p.reduce(16 << 20, [&] { end = q.now(); });
                q.run();
            }
            const double secs = sim::ticksToSec(end);
            EXPECT_GE(secs, prev * 0.95) << gpus;
            prev = secs;
        }
    }
}

TEST(CommInvariantTest, PipelinedBucketsBeatSerialBuckets)
{
    // Many small NCCL collectives must stream faster than the sum of
    // their isolated times (the cross-collective pipelining that wins
    // the paper's 4/8-GPU comparisons).
    const int buckets = 32;
    const sim::Bytes bytes = 1 << 20;
    double streamed;
    {
        sim::EventQueue q;
        hw::Fabric f(q, hw::Topology::dgx1Volta());
        comm::NcclCommunicator nccl(makeCtx(q, f, 8));
        sim::Tick end = 0;
        for (int i = 0; i < buckets; ++i)
            nccl.reduce(bytes, [&] { end = q.now(); });
        q.run();
        streamed = sim::ticksToSec(end);
    }
    double solo;
    {
        sim::EventQueue q;
        hw::Fabric f(q, hw::Topology::dgx1Volta());
        comm::NcclCommunicator nccl(makeCtx(q, f, 8));
        sim::Tick end = 0;
        nccl.reduce(bytes, [&] { end = q.now(); });
        q.run();
        solo = sim::ticksToSec(end);
    }
    EXPECT_LT(streamed, 0.8 * buckets * solo);
}

TEST(CommInvariantTest, WireInflationShowsInLinkBytes)
{
    // NCCL's protocol-efficiency model sends more wire bytes than
    // payload; the fabric's counters see the inflation.
    sim::EventQueue q;
    hw::Fabric f(q, hw::Topology::dgx1Volta());
    comm::NcclCommunicator nccl(makeCtx(q, f, 2));
    const sim::Bytes payload = 10 << 20;
    nccl.reduce(payload, nullptr);
    q.run();
    auto link = f.topology().directLink(0, 1, hw::LinkType::NVLink);
    ASSERT_TRUE(link.has_value());
    const double eff = nccl.config().ncclLinkEfficiency;
    EXPECT_NEAR(f.linkBytesMoved(*link),
                static_cast<double>(payload) / eff,
                0.01 * payload);
}

} // namespace
