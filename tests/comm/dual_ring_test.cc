/**
 * @file
 * Tests for the dual-ring NCCL extension: both NVLink directions
 * carry traffic, collectives speed up, and results stay correct.
 */

#include <gtest/gtest.h>

#include "comm/nccl_communicator.hh"
#include "core/trainer.hh"

namespace {

using namespace dgxsim;
using comm::CommConfig;
using comm::CommContext;

double
timedCollective(int gpus, int rings, sim::Bytes bytes, bool reduce)
{
    sim::EventQueue q;
    hw::Fabric f(q, hw::Topology::dgx1Volta());
    CommContext c;
    c.queue = &q;
    c.fabric = &f;
    c.gpus = f.topology().gpuSet(gpus);
    c.gpuSpec = hw::GpuSpec::voltaV100();
    CommConfig cfg;
    cfg.ncclRings = rings;
    comm::NcclCommunicator nccl(c, cfg);
    sim::Tick end = 0;
    if (reduce)
        nccl.reduce(bytes, [&] { end = q.now(); });
    else
        nccl.broadcast(bytes, [&] { end = q.now(); });
    q.run();
    return sim::ticksToSec(end);
}

TEST(DualRingTest, TwoRingsSpeedUpLargeReduces)
{
    const sim::Bytes bytes = 128u << 20;
    for (int gpus : {4, 8}) {
        const double one = timedCollective(gpus, 1, bytes, true);
        const double two = timedCollective(gpus, 2, bytes, true);
        EXPECT_LT(two, 0.65 * one) << gpus;
    }
}

TEST(DualRingTest, TwoRingsSpeedUpBroadcasts)
{
    const sim::Bytes bytes = 128u << 20;
    const double one = timedCollective(8, 1, bytes, false);
    const double two = timedCollective(8, 2, bytes, false);
    EXPECT_LT(two, 0.65 * one);
}

TEST(DualRingTest, SmallMessagesGainLittle)
{
    // Hop latency dominates tiny collectives; splitting them buys
    // almost nothing (and the paper-era NCCL used one ring).
    const sim::Bytes bytes = 64 << 10;
    const double one = timedCollective(8, 1, bytes, true);
    const double two = timedCollective(8, 2, bytes, true);
    EXPECT_GT(two, 0.8 * one);
}

TEST(DualRingTest, OddByteCountsSplitCleanly)
{
    const double secs = timedCollective(4, 2, (1 << 20) + 1, true);
    EXPECT_GT(secs, 0.0);
}

TEST(DualRingTest, TrainerLevelGainForBigNetworks)
{
    core::TrainConfig cfg;
    cfg.model = "vgg-16";
    cfg.numGpus = 8;
    cfg.batchPerGpu = 32;
    cfg.method = comm::CommMethod::NCCL;
    const double one_ring = core::Trainer::simulate(cfg).epochSeconds;
    cfg.commConfig.ncclRings = 2;
    const double two_rings = core::Trainer::simulate(cfg).epochSeconds;
    EXPECT_LT(two_rings, one_ring);
}

} // namespace
