/**
 * @file
 * Data-plane correctness: both communication methods must produce
 * numerically identical reductions (sum at the root), and composing
 * them with the reference MLP must reproduce single-worker SGD.
 */

#include <gtest/gtest.h>

#include <vector>

#include "comm/nccl_communicator.hh"
#include "comm/p2p_parameter_server.hh"
#include "dnn/reference_trainer.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using comm::CommContext;

class DataPlaneTest : public ::testing::Test
{
  protected:
    sim::EventQueue queue;
    hw::Fabric fabric{queue, hw::Topology::dgx1Volta()};

    CommContext
    ctx(int gpus)
    {
        CommContext c;
        c.queue = &queue;
        c.fabric = &fabric;
        c.gpus = fabric.topology().gpuSet(gpus);
        c.gpuSpec = hw::GpuSpec::voltaV100();
        return c;
    }

    /** Deterministic per-worker buffers. */
    static std::vector<std::vector<float>>
    makeBuffers(int workers, int elems)
    {
        std::vector<std::vector<float>> bufs(workers);
        for (int w = 0; w < workers; ++w) {
            for (int i = 0; i < elems; ++i) {
                bufs[w].push_back(0.25f * w - 0.125f * i +
                                  0.5f * ((w * 31 + i * 7) % 11));
            }
        }
        return bufs;
    }

    static std::vector<float>
    expectedSum(const std::vector<std::vector<float>> &bufs)
    {
        std::vector<float> sum(bufs.front().size(), 0.0f);
        for (const auto &b : bufs) {
            for (std::size_t i = 0; i < sum.size(); ++i)
                sum[i] += b[i];
        }
        return sum;
    }
};

TEST_F(DataPlaneTest, P2pReduceProducesSumAtRoot)
{
    for (int workers : {2, 4, 8}) {
        comm::P2pParameterServer p2p(ctx(workers));
        auto bufs = makeBuffers(workers, 37);
        const auto want = expectedSum(bufs);
        p2p.reduceData(bufs);
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_FLOAT_EQ(bufs[0][i], want[i]) << workers;
    }
}

TEST_F(DataPlaneTest, NcclReduceProducesSumAtRoot)
{
    for (int workers : {2, 4, 8}) {
        comm::NcclCommunicator nccl(ctx(workers));
        auto bufs = makeBuffers(workers, 37);
        const auto want = expectedSum(bufs);
        nccl.reduceData(bufs);
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_NEAR(bufs[0][i], want[i], 1e-3) << workers;
    }
}

TEST_F(DataPlaneTest, BothMethodsAgreeNumerically)
{
    comm::P2pParameterServer p2p(ctx(8));
    comm::NcclCommunicator nccl(ctx(8));
    auto a = makeBuffers(8, 101);
    auto b = a;
    p2p.reduceData(a);
    nccl.reduceData(b);
    for (std::size_t i = 0; i < a[0].size(); ++i)
        EXPECT_NEAR(a[0][i], b[0][i], 1e-3);
}

TEST_F(DataPlaneTest, BroadcastReplicatesRoot)
{
    comm::P2pParameterServer p2p(ctx(4));
    comm::NcclCommunicator nccl(ctx(4));
    for (int method = 0; method < 2; ++method) {
        auto bufs = makeBuffers(4, 16);
        const auto root = bufs[0];
        if (method == 0)
            p2p.broadcastData(bufs);
        else
            nccl.broadcastData(bufs);
        for (int w = 0; w < 4; ++w)
            EXPECT_EQ(bufs[w], root) << "method " << method;
    }
}

TEST_F(DataPlaneTest, MismatchedBuffersAreFatal)
{
    comm::P2pParameterServer p2p(ctx(4));
    std::vector<std::vector<float>> three(3,
                                          std::vector<float>(8, 1.0f));
    EXPECT_THROW(p2p.reduceData(three), sim::FatalError);
    auto bufs = makeBuffers(4, 8);
    bufs[2].pop_back();
    EXPECT_THROW(p2p.reduceData(bufs), sim::FatalError);
}

TEST_F(DataPlaneTest, ReduceBroadcastDrivesDataParallelSgd)
{
    // End-to-end semantic check: run the PS schedule with the real
    // MLP gradients through the communicator data plane and compare
    // with plain full-batch SGD.
    std::vector<dnn::Sample> data;
    for (int i = 0; i < 16; ++i) {
        data.push_back({{0.1 * i - 0.8, 0.05 * (i % 5)},
                        {0.3 * (i % 3) - 0.3}});
    }
    dnn::ReferenceMlp solo({2, 6, 1}, 21);
    dnn::ReferenceMlp server({2, 6, 1}, 21);
    comm::P2pParameterServer p2p(ctx(4));

    for (int step = 0; step < 10; ++step) {
        solo.applyGradients(solo.gradients(data), 0.1);

        // Each worker computes float gradients on its shard.
        std::vector<std::vector<float>> grads(4);
        for (int w = 0; w < 4; ++w) {
            std::vector<dnn::Sample> shard(data.begin() + 4 * w,
                                           data.begin() + 4 * (w + 1));
            dnn::ReferenceMlp worker({2, 6, 1}, 21);
            worker.setParameters(server.parameters());
            for (double g : worker.gradients(shard))
                grads[w].push_back(static_cast<float>(g));
        }
        p2p.reduceData(grads);
        dnn::GradientVector avg;
        for (float g : grads[0])
            avg.push_back(static_cast<double>(g) / 4.0);
        server.applyGradients(avg, 0.1);
    }
    const auto &a = solo.parameters();
    const auto &b = server.parameters();
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-4);
}

} // namespace
