/**
 * @file
 * End-to-end cluster training tests: the 1-node degeneracy property
 * (a 1-node cluster replays the platform-only history tick for
 * tick), multi-node determinism up to 32 nodes, distinct histories
 * per inter-node schedule, the inter-node critical-path attribution
 * category, and the paper-style crossover where the IB fabric
 * dominates communication at scale.
 */

#include <gtest/gtest.h>

#include <memory>

#include "analysis/dag.hh"
#include "analysis/what_if.hh"
#include "comm/factory.hh"
#include "core/determinism.hh"
#include "core/trainer_base.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using core::TrainConfig;

TrainConfig
clusterConfig(const std::string &model, int nodes, int gpus_per_node)
{
    TrainConfig cfg;
    cfg.model = model;
    cfg.nodes = nodes;
    cfg.numGpus = gpus_per_node;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::NCCL;
    return cfg;
}

struct ClusterRun
{
    std::unique_ptr<core::TrainerBase> trainer;
    core::TrainReport report;
    analysis::Dag dag;
    analysis::Attribution attr;

    explicit ClusterRun(const TrainConfig &cfg)
        : trainer(core::TrainerBase::make(cfg)),
          report(trainer->run()),
          dag(trainer->profiler(), trainer->fabric().topology()),
          attr(dag.attribute())
    {
        EXPECT_FALSE(report.oom);
    }
};

TEST(ClusterTrainerTest, OneNodeClusterReplaysThePlatformHistory)
{
    // The degeneracy property: nodes=1 must be the platform-only
    // path, whatever the (unused) cluster knobs say. Digests fold
    // every event and per-link byte counter, so equality here means
    // the histories are identical tick for tick.
    const TrainConfig plain = clusterConfig("lenet", 1, 4);
    TrainConfig dressed = plain;
    dressed.interconnect = "ib400";
    dressed.netAlgo = comm::NetAlgo::Tree;
    dressed.ibBwScale = 4.0; // no IB links to scale
    EXPECT_EQ(core::runDigest(plain), core::runDigest(dressed));

    // And the critical-path attribution agrees field for field, with
    // nothing ever attributed to the (absent) inter-node fabric.
    const ClusterRun a(plain);
    const ClusterRun b(dressed);
    EXPECT_EQ(a.attr.makespan, b.attr.makespan);
    EXPECT_EQ(a.attr.compute, b.attr.compute);
    EXPECT_EQ(a.attr.comm, b.attr.comm);
    EXPECT_EQ(a.attr.api, b.attr.api);
    EXPECT_EQ(a.attr.idle, b.attr.idle);
    EXPECT_EQ(a.attr.interNodeComm, 0u);
    EXPECT_EQ(b.attr.interNodeComm, 0u);
    EXPECT_DOUBLE_EQ(a.report.interNodeBytesPerIter, 0.0);
}

TEST(ClusterTrainerTest, TwoNodeRunIsDeterministicAndAuditedClean)
{
    TrainConfig cfg = clusterConfig("lenet", 2, 2);
    cfg.audit = true;
    const auto report = core::TrainerBase::simulate(cfg);
    ASSERT_FALSE(report.oom);
    EXPECT_TRUE(report.audited);
    EXPECT_GT(report.auditChecks, 0u);
    EXPECT_EQ(report.auditViolations, 0u);
    EXPECT_GT(report.interNodeBytesPerIter, 0.0);
    const auto again = core::TrainerBase::simulate(cfg);
    EXPECT_EQ(report.digest, again.digest);
}

TEST(ClusterTrainerTest, ClusterAxesReplayDistinctHistories)
{
    // Each cluster knob must actually reach the simulation: changing
    // the node count, the schedule, or the interconnect changes the
    // event history.
    const TrainConfig ring = clusterConfig("lenet", 4, 1);
    TrainConfig tree = ring;
    tree.netAlgo = comm::NetAlgo::Tree;
    TrainConfig fat = ring;
    fat.interconnect = "ib400";
    TrainConfig fewer = clusterConfig("lenet", 2, 1);
    const std::uint64_t d_ring = core::runDigest(ring);
    EXPECT_NE(d_ring, core::runDigest(tree));
    EXPECT_NE(d_ring, core::runDigest(fat));
    EXPECT_NE(d_ring, core::runDigest(fewer));
}

TEST(ClusterTrainerTest, ThirtyTwoNodeDigestsMatch)
{
    // The crossover experiments go out to 32 nodes; determinism must
    // hold there too (256 simulated GPUs for lenet x1 per node).
    const auto check =
        core::checkDeterminism(clusterConfig("lenet", 32, 1));
    EXPECT_FALSE(check.oom);
    EXPECT_TRUE(check.deterministic) << check.summary();
    EXPECT_NE(check.firstDigest, 0u);
}

TEST(ClusterTrainerTest, InterNodeCommDominatesAtEightNodes)
{
    // The acceptance crossover: by 8 nodes the IB fabric, not the
    // NVLink fabric, holds the majority of communication time on the
    // critical path.
    const ClusterRun run(clusterConfig("alexnet", 8, 4));
    EXPECT_EQ(run.attr.total(), run.attr.makespan);
    EXPECT_GT(run.attr.interNodeComm, 0u);
    EXPECT_GT(run.attr.interNodeComm, run.attr.comm);
    EXPECT_GT(run.report.interNodeBytesPerIter, 0.0);
}

TEST(ClusterTrainerTest, IbBandwidthWhatIfBitesOnlyOffPlatform)
{
    // On a 2-node run a faster IB fabric must shorten the projected
    // makespan, and the ground-truth knob must reach the config.
    const TrainConfig cfg = clusterConfig("lenet", 2, 2);
    const ClusterRun run(cfg);
    const analysis::WhatIf what_if(run.dag, cfg, run.report);
    analysis::WhatIfParams fat_ib;
    fat_ib.ibBw = 4.0;
    EXPECT_LT(what_if.project(fat_ib), run.dag.makespan());
    const TrainConfig mod =
        analysis::WhatIf::modifiedConfig(cfg, fat_ib);
    EXPECT_DOUBLE_EQ(mod.ibBwScale, 4.0);
}

TEST(ClusterTrainerTest, MultiNodeRequiresSyncDataParallel)
{
    TrainConfig cfg = clusterConfig("lenet", 2, 2);
    cfg.mode = core::ParallelismMode::AsyncPs;
    EXPECT_THROW(core::TrainerBase::simulate(cfg), sim::FatalError);
    cfg.mode = core::ParallelismMode::ModelParallel;
    cfg.method = comm::CommMethod::P2P;
    EXPECT_THROW(core::TrainerBase::simulate(cfg), sim::FatalError);
}

} // namespace
