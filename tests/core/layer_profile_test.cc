/**
 * @file
 * Tests for the per-layer profiling helper.
 */

#include <gtest/gtest.h>

#include "core/layer_profile.hh"
#include "dnn/models.hh"

namespace {

using namespace dgxsim;
using namespace dgxsim::core;

TEST(LayerProfileTest, RowsCoverEveryLayer)
{
    dnn::Network net = dnn::buildLeNet();
    TrainConfig cfg;
    cfg.batchPerGpu = 16;
    const auto summary = profileLayers(net, cfg);
    EXPECT_EQ(summary.layers.size(), net.layers().size());
    for (std::size_t i = 0; i < summary.layers.size(); ++i) {
        EXPECT_EQ(summary.layers[i].name, net.layers()[i]->name());
        EXPECT_GT(summary.layers[i].fwdUs, 0.0);
        EXPECT_GE(summary.layers[i].bwdUs, summary.layers[i].fwdUs);
    }
}

TEST(LayerProfileTest, TotalsAreSums)
{
    dnn::Network net = dnn::buildAlexNet();
    TrainConfig cfg;
    cfg.batchPerGpu = 32;
    const auto summary = profileLayers(net, cfg);
    double fwd = 0, bwd = 0;
    sim::Bytes params = 0;
    for (const auto &row : summary.layers) {
        fwd += row.fwdUs;
        bwd += row.bwdUs;
        params += row.params;
    }
    EXPECT_NEAR(summary.totalFwdUs, fwd, 1e-6);
    EXPECT_NEAR(summary.totalBwdUs, bwd, 1e-6);
    EXPECT_EQ(summary.totalParams, params);
    EXPECT_EQ(params, net.paramCount());
}

TEST(LayerProfileTest, HottestIsSortedAndTruncated)
{
    dnn::Network net = dnn::buildResNet50();
    TrainConfig cfg;
    cfg.batchPerGpu = 16;
    const auto summary = profileLayers(net, cfg);
    const auto top = summary.hottest(5);
    ASSERT_EQ(top.size(), 5u);
    for (std::size_t i = 1; i < top.size(); ++i) {
        EXPECT_GE(top[i - 1].fwdUs + top[i - 1].bwdUs,
                  top[i].fwdUs + top[i].bwdUs);
    }
    // Asking for more rows than layers returns all of them.
    EXPECT_EQ(summary.hottest(100000).size(), summary.layers.size());
}

TEST(LayerProfileTest, AlexNetHotspotsAreFcAndEarlyConvs)
{
    // The classic profile: fc6 and conv2 dominate AlexNet.
    dnn::Network net = dnn::buildAlexNet();
    TrainConfig cfg;
    cfg.batchPerGpu = 16;
    const auto top = profileLayers(net, cfg).hottest(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_TRUE(top[0].name == "fc6" || top[0].name == "conv2");
    EXPECT_TRUE(top[1].name == "fc6" || top[1].name == "conv2");
}

TEST(LayerProfileTest, TensorCoresShrinkConvTimesOnly)
{
    dnn::Network net = dnn::buildResNet50();
    TrainConfig cfg;
    cfg.batchPerGpu = 32;
    const auto fp32 = profileLayers(net, cfg);
    cfg.useTensorCores = true;
    const auto fp16 = profileLayers(net, cfg);
    EXPECT_LT(fp16.totalFwdUs, fp32.totalFwdUs);
    // BatchNorm rows are not tensor-eligible: identical times.
    for (std::size_t i = 0; i < fp32.layers.size(); ++i) {
        if (fp32.layers[i].kind == "batchnorm") {
            EXPECT_DOUBLE_EQ(fp32.layers[i].fwdUs,
                             fp16.layers[i].fwdUs);
        }
    }
}

} // namespace
