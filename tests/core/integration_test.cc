/**
 * @file
 * Cross-module integration invariants: traffic conservation between
 * the trainer and the communication library, steady-state stability,
 * and the FP/BP schedule's kernel accounting.
 */

#include <gtest/gtest.h>

#include "core/fp_bp_schedule.hh"
#include "core/trainer.hh"
#include "dnn/models.hh"

namespace {

using namespace dgxsim;
using namespace dgxsim::core;

TEST(IntegrationTest, P2pTrafficEqualsGradientsPlusWeights)
{
    // At 2 GPUs the P2P schedule moves exactly one gradient copy in
    // and one weight copy out per iteration: 2 x paramBytes.
    TrainConfig cfg;
    cfg.model = "alexnet";
    cfg.numGpus = 2;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::P2P;
    const TrainReport r = Trainer::simulate(cfg);
    const double params =
        static_cast<double>(dnn::buildAlexNet().paramBytes());
    EXPECT_NEAR(r.interGpuBytesPerIter, 2.0 * params, 0.01 * params);
}

TEST(IntegrationTest, NcclRingTrafficMatchesHopCount)
{
    // Ring Reduce and Broadcast each traverse (N-1) hops carrying the
    // full payload, so the per-iteration payload records sum to
    // 2 (N-1) x paramBytes.
    TrainConfig cfg;
    cfg.model = "alexnet";
    cfg.numGpus = 4;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::NCCL;
    const TrainReport r = Trainer::simulate(cfg);
    const double params =
        static_cast<double>(dnn::buildAlexNet().paramBytes());
    EXPECT_NEAR(r.interGpuBytesPerIter, 2.0 * 3.0 * params,
                0.02 * params);
}

TEST(IntegrationTest, SteadyStateIsStableAcrossMeasuredIterations)
{
    TrainConfig cfg;
    cfg.model = "googlenet";
    cfg.numGpus = 4;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::NCCL;
    cfg.measuredIterations = 1;
    const double one = Trainer::simulate(cfg).iterationSeconds;
    cfg.measuredIterations = 4;
    const double four = Trainer::simulate(cfg).iterationSeconds;
    EXPECT_NEAR(one, four, 0.01 * one);
}

TEST(IntegrationTest, DeviceMemoryCategoriesSumToUsed)
{
    cuda::Device dev(0, hw::GpuSpec::voltaV100());
    dev.mem().alloc(cuda::MemCategory::Context, 100);
    dev.mem().alloc(cuda::MemCategory::Weights, 200);
    dev.mem().alloc(cuda::MemCategory::Activations, 300);
    sim::Bytes sum = 0;
    for (int c = 0;
         c < static_cast<int>(cuda::MemCategory::NumCategories); ++c)
        sum += dev.mem().usedBy(static_cast<cuda::MemCategory>(c));
    EXPECT_EQ(sum, dev.mem().used());
}

TEST(FpBpScheduleTest, KernelCountsMatchTheNetwork)
{
    sim::EventQueue queue;
    profiling::Profiler prof;
    cuda::Stream stream(queue, &prof, 0, "s");
    cuda::HostThread worker(queue, &prof, "w");
    TrainConfig cfg;
    cfg.model = "lenet";
    dnn::Network net = dnn::buildLeNet();

    int markers = 0;
    std::vector<int> marker_order;
    issueFpBp(worker, stream, net, cfg,
              [&](int weighted_idx) {
                  ++markers;
                  marker_order.push_back(weighted_idx);
              });
    queue.run();

    std::size_t expected = net.layers().size(); // forward kernels
    for (const auto &layer : net.layers())
        expected += layer->backwardKernels();
    EXPECT_EQ(prof.kernels().size(), expected);
    EXPECT_EQ(markers, net.weightedLayers());
    // Markers fire in reverse (BP) order: last weighted layer first.
    ASSERT_EQ(marker_order.size(), 4u);
    EXPECT_EQ(marker_order.front(), 3);
    EXPECT_EQ(marker_order.back(), 0);
}

TEST(FpBpScheduleTest, NoMarkersWithoutCallback)
{
    sim::EventQueue queue;
    profiling::Profiler prof;
    cuda::Stream stream(queue, &prof, 0, "s");
    cuda::HostThread worker(queue, &prof, "w");
    TrainConfig cfg;
    dnn::Network net = dnn::buildLeNet();
    issueFpBp(worker, stream, net, cfg, {});
    queue.run();
    EXPECT_GT(prof.kernels().size(), 0u);
}

TEST(FpBpScheduleTest, ForwardKernelsPrecedeBackward)
{
    sim::EventQueue queue;
    profiling::Profiler prof;
    cuda::Stream stream(queue, &prof, 0, "s");
    cuda::HostThread worker(queue, &prof, "w");
    TrainConfig cfg;
    dnn::Network net = dnn::buildLeNet();
    issueFpBp(worker, stream, net, cfg, {});
    queue.run();
    bool saw_bwd = false;
    for (const auto &k : prof.kernels()) {
        const bool is_bwd =
            k.name.find("_bwd") != std::string::npos;
        if (is_bwd)
            saw_bwd = true;
        if (saw_bwd) {
            EXPECT_NE(k.name.find("_bwd"), std::string::npos)
                << k.name;
        }
    }
    EXPECT_TRUE(saw_bwd);
}

TEST(IntegrationTest, TensorCoresDoNotChangeTraffic)
{
    // Compute mode must not alter communication volume.
    TrainConfig cfg;
    cfg.model = "resnet-50";
    cfg.numGpus = 4;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::NCCL;
    const double fp32 = Trainer::simulate(cfg).interGpuBytesPerIter;
    cfg.useTensorCores = true;
    const double fp16 = Trainer::simulate(cfg).interGpuBytesPerIter;
    EXPECT_NEAR(fp32, fp16, 1.0);
}

} // namespace
