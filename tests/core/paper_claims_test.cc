/**
 * @file
 * Regression tests pinning the paper's quantitative claims (with
 * tolerances). These are the "shape" targets of the reproduction;
 * EXPERIMENTS.md records the exact measured values.
 */

#include <gtest/gtest.h>

#include "core/scaling.hh"
#include "core/trainer.hh"
#include "dnn/models.hh"

namespace {

using namespace dgxsim;
using namespace dgxsim::core;
using comm::CommMethod;

TrainConfig
makeConfig(const std::string &model, int gpus, int batch,
           CommMethod method)
{
    TrainConfig cfg;
    cfg.model = model;
    cfg.numGpus = gpus;
    cfg.batchPerGpu = batch;
    cfg.method = method;
    return cfg;
}

double
epoch(const std::string &model, int gpus, int batch, CommMethod m)
{
    return Trainer::simulate(makeConfig(model, gpus, batch, m))
        .epochSeconds;
}

TEST(PaperClaims, LeNetP2pStrongScalingSpeedups)
{
    // Paper Sec. V-A: "With P2P we can speed up the training time by
    // factors of 1.62, 2.37 and 3.36 for 2, 4 and 8 GPUs".
    const double base = epoch("lenet", 1, 16, CommMethod::P2P);
    EXPECT_NEAR(base / epoch("lenet", 2, 16, CommMethod::P2P), 1.62,
                0.25);
    EXPECT_NEAR(base / epoch("lenet", 4, 16, CommMethod::P2P), 2.37,
                0.35);
    EXPECT_NEAR(base / epoch("lenet", 8, 16, CommMethod::P2P), 3.36,
                0.45);
}

TEST(PaperClaims, LeNetNcclSpeedupsAreLowerThanP2p)
{
    // Paper: NCCL speedups 1.56, 2.27, 2.77 — consistently below the
    // P2P ones, and NCCL absolute time is worse at every GPU count.
    for (int gpus : {1, 2, 4, 8}) {
        EXPECT_LT(epoch("lenet", gpus, 16, CommMethod::P2P),
                  epoch("lenet", gpus, 16, CommMethod::NCCL))
            << gpus;
    }
}

TEST(PaperClaims, LeNetBatchSizeScaling)
{
    // Paper: for 4 GPUs with P2P, batch 16->32 and 16->64 cut epoch
    // time by 1.92x and 3.67x.
    const double b16 = epoch("lenet", 4, 16, CommMethod::P2P);
    EXPECT_NEAR(b16 / epoch("lenet", 4, 32, CommMethod::P2P), 1.92,
                0.3);
    EXPECT_NEAR(b16 / epoch("lenet", 4, 64, CommMethod::P2P), 3.67,
                0.6);
}

TEST(PaperClaims, TwoGpuSpeedupAtMostAboutOnePointEight)
{
    // Paper: "As we increase the number of GPUs from 1 to 2, for all
    // the workloads, we observe up to a 1.8x speedup".
    for (const char *model : {"lenet", "alexnet", "googlenet",
                              "resnet-50", "inception-v3"}) {
        const double speedup = epoch(model, 1, 16, CommMethod::P2P) /
                               epoch(model, 2, 16, CommMethod::P2P);
        EXPECT_LE(speedup, 1.95) << model;
    }
}

TEST(PaperClaims, NcclWinsForBigNetworksAtFourAndEightGpus)
{
    // Paper: GoogLeNet 1.1x/1.2x and ResNet/Inception-v3 1.1x/1.25x
    // faster with NCCL at 4/8 GPUs.
    for (const char *model :
         {"googlenet", "resnet-50", "inception-v3"}) {
        const double r4 = epoch(model, 4, 16, CommMethod::P2P) /
                          epoch(model, 4, 16, CommMethod::NCCL);
        const double r8 = epoch(model, 8, 16, CommMethod::P2P) /
                          epoch(model, 8, 16, CommMethod::NCCL);
        EXPECT_GT(r4, 1.0) << model;
        EXPECT_LT(r4, 1.25) << model;
        EXPECT_GT(r8, 1.1) << model;
        EXPECT_LT(r8, 1.45) << model;
        EXPECT_GT(r8, r4) << model; // pipelining pays off more at 8
    }
}

TEST(PaperClaims, P2pWinsForSmallNetworksAtTwoAndFourGpus)
{
    for (const char *model : {"lenet", "alexnet"}) {
        for (int gpus : {2, 4}) {
            EXPECT_LT(epoch(model, gpus, 16, CommMethod::P2P),
                      epoch(model, gpus, 16, CommMethod::NCCL))
                << model << " x" << gpus;
        }
    }
}

TEST(PaperClaims, TableIINcclOverheadOnOneGpu)
{
    // Paper Table II: ~21.8% for LeNet b16; large networks stay
    // small and vary by less than 3.6 points across batch sizes.
    auto overhead = [](const char *model, int batch) {
        const double p2p = epoch(model, 1, batch, CommMethod::P2P);
        const double nccl = epoch(model, 1, batch, CommMethod::NCCL);
        return 100.0 * (nccl - p2p) / p2p;
    };
    EXPECT_NEAR(overhead("lenet", 16), 21.8, 6.0);
    for (const char *model :
         {"googlenet", "resnet-50", "inception-v3"}) {
        double min_oh = 1e9, max_oh = -1e9;
        for (int batch : {16, 32, 64}) {
            const double oh = overhead(model, batch);
            EXPECT_LT(oh, 5.0) << model << " b" << batch;
            EXPECT_GT(oh, 0.0) << model << " b" << batch;
            min_oh = std::min(min_oh, oh);
            max_oh = std::max(max_oh, oh);
        }
        EXPECT_LT(max_oh - min_oh, 3.6) << model;
    }
}

TEST(PaperClaims, FpBpDominatesTrainingTime)
{
    // Paper Sec. V-C insight: computation dominates as GPUs scale
    // for the compute-intensive workloads.
    for (const char *model :
         {"googlenet", "resnet-50", "inception-v3"}) {
        for (int gpus : {2, 4, 8}) {
            TrainReport r = Trainer::simulate(
                makeConfig(model, gpus, 16, CommMethod::NCCL));
            EXPECT_GT(r.fpBpSeconds, r.wuSeconds)
                << model << " x" << gpus;
        }
    }
}

TEST(PaperClaims, WuStageScalesAcrossGpusForLeNet)
{
    // Paper Fig. 4: LeNet's WU epoch time decreases from 2 to 4 to 8
    // GPUs (iterations halve). In our model the decrease is
    // sublinear because ring hop latency grows with the GPU count;
    // EXPERIMENTS.md records the measured ratios.
    TrainReport r2 =
        Trainer::simulate(makeConfig("lenet", 2, 16, CommMethod::NCCL));
    TrainReport r4 =
        Trainer::simulate(makeConfig("lenet", 4, 16, CommMethod::NCCL));
    TrainReport r8 =
        Trainer::simulate(makeConfig("lenet", 8, 16, CommMethod::NCCL));
    EXPECT_GT(r2.wuSeconds / r4.wuSeconds, 1.05);
    EXPECT_GT(r4.wuSeconds / r8.wuSeconds, 1.05);
}

TEST(PaperClaims, TableIVInceptionMemory)
{
    // Paper Table IV: Inception-v3 batch 64 needs ~11 GB on GPU0 and
    // grows ~1.83x from batch 16.
    TrainReport b16 = Trainer::simulate(
        makeConfig("inception-v3", 4, 16, CommMethod::NCCL));
    TrainReport b64 = Trainer::simulate(
        makeConfig("inception-v3", 4, 64, CommMethod::NCCL));
    EXPECT_NEAR(b64.gpu0.trainingGB(), 11.0, 1.5);
    EXPECT_NEAR(b64.gpu0.trainingGB() / b16.gpu0.trainingGB(), 1.83,
                0.35);
    // AlexNet batch 64 on GPU0: ~2.37 GB in the paper.
    TrainReport alex = Trainer::simulate(
        makeConfig("alexnet", 4, 64, CommMethod::NCCL));
    EXPECT_NEAR(alex.gpu0.trainingGB(), 2.37, 1.0);
}

TEST(PaperClaims, ActivationsDominateModelMemoryForBigNets)
{
    // Paper: "the memory required for intermediate outputs far
    // exceeds the memory required for the network model".
    for (const char *model :
         {"googlenet", "resnet-50", "inception-v3"}) {
        TrainReport r = Trainer::simulate(
            makeConfig(model, 4, 64, CommMethod::NCCL));
        const double model_gb =
            dnn::buildByName(model).paramBytes() / 1e9;
        EXPECT_GT(r.gpux.trainingGB(), 10.0 * model_gb) << model;
    }
}

TEST(PaperClaims, WeakScalingBeatsStrongScalingForLeNet)
{
    // Paper Sec. V-E: LeNet's weak-scaling speedup exceeds strong
    // scaling for all batch sizes and both methods.
    for (CommMethod m : {CommMethod::P2P, CommMethod::NCCL}) {
        TrainConfig cfg = makeConfig("lenet", 1, 16, m);
        auto strong = strongScaling(cfg, {1, 8});
        auto weak = weakScaling(cfg, {1, 8});
        EXPECT_GT(weak[1].speedup, strong[1].speedup)
            << comm::commMethodName(m);
    }
}

TEST(PaperClaims, WeakScalingGainIsSmallForBigNetworks)
{
    // Paper: for ResNet/GoogLeNet/Inception-v3 the weak-scaling
    // speedups are less than 17% higher than strong scaling (NCCL).
    for (const char *model :
         {"googlenet", "resnet-50", "inception-v3"}) {
        TrainConfig cfg = makeConfig(model, 1, 16, CommMethod::NCCL);
        auto strong = strongScaling(cfg, {1, 8});
        auto weak = weakScaling(cfg, {1, 8});
        const double gain = weak[1].speedup / strong[1].speedup;
        EXPECT_GE(gain, 0.99) << model;
        EXPECT_LT(gain, 1.17) << model;
    }
}

} // namespace
