/**
 * @file
 * Tests for the asynchronous-SGD extension: throughput, staleness,
 * and protocol invariants (paper Sec. II-B).
 */

#include <gtest/gtest.h>

#include "core/async_trainer.hh"
#include "core/trainer.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using namespace dgxsim::core;

TrainConfig
makeConfig(const std::string &model, int gpus)
{
    TrainConfig cfg;
    cfg.model = model;
    cfg.numGpus = gpus;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::P2P;
    return cfg;
}

TEST(AsyncTrainerTest, SingleGpuHasZeroStaleness)
{
    const TrainReport r =
        AsyncTrainer::simulate(makeConfig("lenet", 1));
    EXPECT_DOUBLE_EQ(r.avgStaleness, 0.0);
    EXPECT_EQ(r.maxStaleness, 0);
    EXPECT_GT(r.throughputImagesPerSec, 0);
}

TEST(AsyncTrainerTest, AllPushesAccounted)
{
    AsyncTrainer trainer(makeConfig("lenet", 4));
    const TrainReport r = trainer.run(25);
    EXPECT_EQ(r.pushes, 4u * 25u);
}

TEST(AsyncTrainerTest, StalenessGrowsWithWorkers)
{
    double prev = -1;
    for (int gpus : {2, 4, 8}) {
        const TrainReport r =
            AsyncTrainer::simulate(makeConfig("resnet-50", gpus));
        EXPECT_GT(r.avgStaleness, prev) << gpus;
        // Mean staleness cannot exceed a full round of other workers
        // by much in steady state.
        EXPECT_LE(r.avgStaleness, 2.0 * gpus) << gpus;
        prev = r.avgStaleness;
    }
}

TEST(AsyncTrainerTest, StalenessApproachesWorkerCountForShortIterations)
{
    // With homogeneous workers, each pull-to-push window sees about
    // one update from every other worker.
    const TrainReport r =
        AsyncTrainer::simulate(makeConfig("lenet", 8));
    EXPECT_NEAR(r.avgStaleness, 7.0, 2.0);
}

TEST(AsyncTrainerTest, AsyncBeatsSyncForStragglerBoundWorkloads)
{
    // Removing the barrier + per-bucket serialization helps the
    // short-iteration workloads most (the engine-dispatch straggling
    // the paper blames for LeNet's scaling).
    for (const char *model : {"lenet", "resnet-50"}) {
        const TrainConfig cfg = makeConfig(model, 8);
        const double sync = Trainer::simulate(cfg).epochSeconds;
        const double async = AsyncTrainer::simulate(cfg).epochSeconds;
        EXPECT_LT(async, sync) << model;
    }
}

TEST(AsyncTrainerTest, ThroughputScalesWithWorkers)
{
    double prev = 0;
    for (int gpus : {1, 2, 4, 8}) {
        const TrainReport r =
            AsyncTrainer::simulate(makeConfig("resnet-50", gpus));
        EXPECT_GT(r.throughputImagesPerSec, prev) << gpus;
        prev = r.throughputImagesPerSec;
    }
}

TEST(AsyncTrainerTest, DeterministicAcrossRuns)
{
    const TrainConfig cfg = makeConfig("alexnet", 4);
    const TrainReport a = AsyncTrainer::simulate(cfg);
    const TrainReport b = AsyncTrainer::simulate(cfg);
    EXPECT_DOUBLE_EQ(a.epochSeconds, b.epochSeconds);
    EXPECT_DOUBLE_EQ(a.avgStaleness, b.avgStaleness);
}

TEST(AsyncTrainerTest, OneLineMentionsStaleness)
{
    const TrainReport r =
        AsyncTrainer::simulate(makeConfig("lenet", 2));
    const std::string line = r.oneLine();
    EXPECT_NE(line.find("async"), std::string::npos);
    EXPECT_NE(line.find("staleness"), std::string::npos);
}

TEST(AsyncTrainerTest, InvalidConfigsAreFatal)
{
    EXPECT_THROW(AsyncTrainer::simulate(makeConfig("lenet", 0)),
                 sim::FatalError);
    AsyncTrainer trainer(makeConfig("lenet", 1));
    EXPECT_THROW(trainer.run(0), sim::FatalError);
}

} // namespace
