/**
 * @file
 * Tests for scaling sweeps and the text-table formatter.
 */

#include <gtest/gtest.h>

#include "core/scaling.hh"
#include "core/text_table.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using namespace dgxsim::core;

TEST(ScalingTest, StrongScalingKeepsDatasetFixed)
{
    TrainConfig cfg;
    cfg.model = "lenet";
    cfg.batchPerGpu = 16;
    auto points = strongScaling(cfg, {1, 2, 4});
    ASSERT_EQ(points.size(), 3u);
    for (const auto &p : points) {
        EXPECT_EQ(p.report.config.datasetImages, cfg.datasetImages);
        EXPECT_EQ(p.report.config.numGpus, p.gpus);
    }
    EXPECT_DOUBLE_EQ(points[0].speedup, 1.0);
    EXPECT_GT(points[1].speedup, 1.0);
    EXPECT_GT(points[2].speedup, points[1].speedup);
}

TEST(ScalingTest, WeakScalingGrowsDataset)
{
    TrainConfig cfg;
    cfg.model = "lenet";
    cfg.batchPerGpu = 16;
    auto points = weakScaling(cfg, {1, 2, 4, 8});
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].report.config.datasetImages, 256000u);
    EXPECT_EQ(points[1].report.config.datasetImages, 512000u);
    EXPECT_EQ(points[3].report.config.datasetImages, 2048000u);
    // Speedup is throughput-normalized: still greater than 1.
    EXPECT_GT(points[3].speedup, 1.0);
}

TEST(ScalingTest, WeakScalingIterationsStayConstantPerGpu)
{
    TrainConfig cfg;
    cfg.model = "alexnet";
    cfg.batchPerGpu = 32;
    auto points = weakScaling(cfg, {1, 4});
    EXPECT_EQ(points[0].report.iterations, points[1].report.iterations);
}

TEST(TextTableTest, AlignsColumnsAndFormats)
{
    TextTable table({"Network", "Batch", "Time (s)"});
    table.addRow({"LeNet", "16", TextTable::num(1.2345, 2)});
    table.addRow({"Inception-v3", "64", TextTable::num(123.4, 1)});
    const std::string out = table.str();
    EXPECT_NE(out.find("Network"), std::string::npos);
    EXPECT_NE(out.find("1.23"), std::string::npos);
    EXPECT_NE(out.find("123.4"), std::string::npos);
    EXPECT_NE(out.find("Inception-v3"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, WrongCellCountIsFatal)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), sim::FatalError);
}

TEST(TextTableTest, NumPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 3), "3.142");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

} // namespace
