/**
 * @file
 * Tests for report types and config arithmetic.
 */

#include <gtest/gtest.h>

#include "core/report.hh"

namespace {

using namespace dgxsim;
using namespace dgxsim::core;

TEST(ReportTest, SpeedupOverComputes)
{
    TrainReport fast, slow;
    fast.epochSeconds = 50;
    slow.epochSeconds = 100;
    EXPECT_DOUBLE_EQ(fast.speedupOver(slow), 2.0);
    EXPECT_DOUBLE_EQ(slow.speedupOver(fast), 0.5);
    TrainReport zero;
    EXPECT_DOUBLE_EQ(zero.speedupOver(slow), 0.0);
}

TEST(ReportTest, GpuMemoryUnitConversions)
{
    GpuMemory mem;
    mem.preTraining = 1'500'000'000ull;
    mem.training = 12'170'000'000ull;
    EXPECT_NEAR(mem.preTrainingGB(), 1.5, 1e-9);
    EXPECT_NEAR(mem.trainingGB(), 12.17, 1e-9);
}

TEST(TrainConfigTest, GlobalBatchAndIterations)
{
    TrainConfig cfg;
    cfg.numGpus = 8;
    cfg.batchPerGpu = 32;
    cfg.datasetImages = 256000;
    EXPECT_EQ(cfg.globalBatch(), 256);
    EXPECT_EQ(cfg.iterationsPerEpoch(), 1000u);
    // Ceil division.
    cfg.datasetImages = 256001;
    EXPECT_EQ(cfg.iterationsPerEpoch(), 1001u);
}

TEST(TrainConfigTest, DefaultsMatchThePaperSetup)
{
    TrainConfig cfg;
    EXPECT_EQ(cfg.datasetImages, 256000u);
    EXPECT_FALSE(cfg.useTensorCores); // fp32 MXNet 18.04
    EXPECT_FALSE(cfg.useAllReduce);   // Reduce + Broadcast kvstore
    EXPECT_DOUBLE_EQ(cfg.bucketFusionMB, 0.0);
    EXPECT_FALSE(cfg.overlapBpWu);
    EXPECT_EQ(cfg.gpuSpec.numSms, 80); // V100
}

} // namespace
