/**
 * @file
 * Machine/TrainerBase refactor parity suite.
 *
 * The refactor moved the substrate (event queue, devices, streams,
 * memory planner, auditor, digest) out of the trainers into
 * core::Machine. These tests pin the synchronous trainer to values
 * recorded by the pre-refactor implementation (the committed
 * results/baseline.json): identical digests and %.17g-exact epoch
 * times prove the refactored code replays the same event history
 * bit-for-bit, and the sync JSON encoding proves campaign output
 * stays byte-identical (no "mode" key leaks into sync records).
 */

#include <gtest/gtest.h>

#include <string>

#include "campaign/record.hh"
#include "core/trainer.hh"
#include "core/trainer_base.hh"

namespace {

using namespace dgxsim;
using core::ParallelismMode;
using core::TrainConfig;
using core::TrainerBase;
using core::TrainReport;

TrainConfig
config(const std::string &model, int gpus, int batch,
       comm::CommMethod method)
{
    TrainConfig cfg;
    cfg.model = model;
    cfg.numGpus = gpus;
    cfg.batchPerGpu = batch;
    cfg.method = method;
    return cfg;
}

// Golden values from the pre-refactor results/baseline.json.

TEST(RefactorParity, LenetSingleGpuMatchesPreRefactorBaseline)
{
    const TrainReport r = TrainerBase::simulate(
        config("lenet", 1, 16, comm::CommMethod::P2P));
    ASSERT_FALSE(r.oom);
    EXPECT_EQ(r.digest, 0x919782d29091d3f9ull);
    EXPECT_EQ(r.epochSeconds, 21.852700431999999);
    EXPECT_EQ(r.iterations, 16000u);
    EXPECT_EQ(r.syncApiFraction, 0.20210990661019007);
    EXPECT_EQ(r.gpu0.training, 620610080u);
}

TEST(RefactorParity, ResnetNcclEightGpuMatchesPreRefactorBaseline)
{
    const TrainReport r = TrainerBase::simulate(
        config("resnet-50", 8, 64, comm::CommMethod::NCCL));
    ASSERT_FALSE(r.oom);
    EXPECT_EQ(r.digest, 0xd3c567332fa561a6ull);
    EXPECT_EQ(r.epochSeconds, 113.81398063500001);
    EXPECT_EQ(r.interGpuBytesPerIter, 1432681152.0);
    EXPECT_EQ(r.gpu0.training, 10669003443u);
    EXPECT_EQ(r.gpux.training, 10464334707u);
}

TEST(RefactorParity, DispatchedSimulateEqualsDirectTrainer)
{
    // TrainerBase::simulate on a sync config and the legacy
    // Trainer::simulate entry point must replay the same history.
    const TrainConfig cfg =
        config("alexnet", 4, 32, comm::CommMethod::NCCL);
    const TrainReport dispatched = TrainerBase::simulate(cfg);
    const TrainReport direct = core::Trainer::simulate(cfg);
    EXPECT_EQ(dispatched.digest, direct.digest);
    EXPECT_EQ(dispatched.epochSeconds, direct.epochSeconds);
    EXPECT_EQ(dispatched.gpu0.training, direct.gpu0.training);
}

TEST(RefactorParity, SyncJsonStaysByteIdentical)
{
    // Sync records must serialize exactly as before the mode axis
    // existed: no "mode" key, same field order.
    const TrainReport r = TrainerBase::simulate(
        config("lenet", 1, 16, comm::CommMethod::P2P));
    const std::string json =
        campaign::recordsToJson({campaign::recordFromReport(r)});
    EXPECT_EQ(json.find("\"mode\""), std::string::npos);
    EXPECT_NE(json.find("\"digest\": \"919782d29091d3f9\""),
              std::string::npos);
    EXPECT_NE(json.find("\"epoch_s\": 21.852700431999999"),
              std::string::npos);
}

TEST(RefactorParity, NonSyncJsonCarriesModeKey)
{
    TrainConfig cfg = config("lenet", 2, 16, comm::CommMethod::P2P);
    cfg.mode = ParallelismMode::AsyncPs;
    const std::string json = campaign::recordsToJson(
        {campaign::recordFromReport(TrainerBase::simulate(cfg))});
    EXPECT_NE(json.find("\"mode\": \"async_ps\""), std::string::npos);
    EXPECT_NE(json.find("\"avg_staleness\""), std::string::npos);
}

} // namespace
