/**
 * @file
 * Tests for the training simulator: stage accounting, scaling
 * behavior, memory model, and OOM probing.
 */

#include <gtest/gtest.h>

#include "core/trainer.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using namespace dgxsim::core;
using comm::CommMethod;

TrainConfig
makeConfig(const std::string &model, int gpus, int batch,
           CommMethod method)
{
    TrainConfig cfg;
    cfg.model = model;
    cfg.numGpus = gpus;
    cfg.batchPerGpu = batch;
    cfg.method = method;
    return cfg;
}

TEST(TrainerTest, ReportAccountsForAllStages)
{
    TrainReport r =
        Trainer::simulate(makeConfig("lenet", 2, 16, CommMethod::P2P));
    EXPECT_FALSE(r.oom);
    EXPECT_GT(r.iterationSeconds, 0);
    EXPECT_GT(r.fpBpSeconds, 0);
    EXPECT_GT(r.wuSeconds, 0);
    EXPECT_EQ(r.iterations, 256000u / 32u);
    EXPECT_NEAR(r.epochSeconds,
                r.fpBpSeconds + r.wuSeconds + r.setupSeconds,
                1e-6 * r.epochSeconds);
}

TEST(TrainerTest, IterationCountsFollowBatchAndGpus)
{
    auto cfg = makeConfig("lenet", 4, 32, CommMethod::P2P);
    EXPECT_EQ(cfg.iterationsPerEpoch(), 2000u);
    cfg.batchPerGpu = 64;
    EXPECT_EQ(cfg.iterationsPerEpoch(), 1000u);
    cfg.datasetImages = 100;
    EXPECT_EQ(cfg.iterationsPerEpoch(), 1u);
}

TEST(TrainerTest, DeterministicAcrossRuns)
{
    const auto cfg = makeConfig("googlenet", 4, 16, CommMethod::NCCL);
    TrainReport a = Trainer::simulate(cfg);
    TrainReport b = Trainer::simulate(cfg);
    EXPECT_DOUBLE_EQ(a.epochSeconds, b.epochSeconds);
    EXPECT_DOUBLE_EQ(a.wuSeconds, b.wuSeconds);
    EXPECT_EQ(a.gpu0.training, b.gpu0.training);
}

TEST(TrainerTest, MoreGpusReduceEpochTime)
{
    for (CommMethod m : {CommMethod::P2P, CommMethod::NCCL}) {
        double prev = 1e18;
        for (int gpus : {1, 2, 4, 8}) {
            TrainReport r =
                Trainer::simulate(makeConfig("resnet-50", gpus, 16, m));
            EXPECT_LT(r.epochSeconds, prev)
                << gpus << " gpus, " << comm::commMethodName(m);
            prev = r.epochSeconds;
        }
    }
}

TEST(TrainerTest, LargerBatchReducesEpochTime)
{
    double prev = 1e18;
    for (int batch : {16, 32, 64}) {
        TrainReport r = Trainer::simulate(
            makeConfig("inception-v3", 4, batch, CommMethod::NCCL));
        EXPECT_LT(r.epochSeconds, prev) << "batch " << batch;
        prev = r.epochSeconds;
    }
}

TEST(TrainerTest, SingleGpuWuIsTiny)
{
    // Paper: for a single GPU the WU stage is nearly two orders of
    // magnitude smaller than FP+BP (no inter-GPU communication).
    TrainReport r = Trainer::simulate(
        makeConfig("resnet-50", 1, 16, CommMethod::P2P));
    EXPECT_LT(r.wuSeconds, 0.05 * r.fpBpSeconds);
}

TEST(TrainerTest, WuGrowsWithGpuCountPerIteration)
{
    // Exposed communication per iteration grows with GPU count for
    // the P2P parameter server (tree depth + staged hops).
    double prev = 0;
    for (int gpus : {2, 4, 8}) {
        TrainReport r = Trainer::simulate(
            makeConfig("alexnet", gpus, 16, CommMethod::P2P));
        const double wu_per_iter =
            r.wuSeconds / static_cast<double>(r.iterations);
        EXPECT_GT(wu_per_iter, prev) << gpus;
        prev = wu_per_iter;
    }
}

TEST(TrainerTest, SyncFractionGrowsWithGpus)
{
    // Paper Table III trend.
    double prev = 0;
    for (int gpus : {1, 2, 4, 8}) {
        TrainReport r = Trainer::simulate(
            makeConfig("lenet", gpus, 16, CommMethod::NCCL));
        EXPECT_GT(r.syncApiFraction, prev) << gpus;
        prev = r.syncApiFraction;
    }
}

TEST(TrainerTest, MemoryGpu0ExceedsWorkers)
{
    TrainReport r = Trainer::simulate(
        makeConfig("alexnet", 4, 16, CommMethod::NCCL));
    EXPECT_GT(r.gpu0.training, r.gpux.training);
    EXPECT_EQ(r.gpu0.preTraining, r.gpux.preTraining);
    // GPU0's extra is batch-independent, so its share shrinks with
    // batch (Table IV trend).
    TrainReport r64 = Trainer::simulate(
        makeConfig("alexnet", 4, 64, CommMethod::NCCL));
    const double extra16 =
        double(r.gpu0.training - r.gpux.training) / r.gpux.training;
    const double extra64 =
        double(r64.gpu0.training - r64.gpux.training) /
        r64.gpux.training;
    EXPECT_LT(extra64, extra16);
}

TEST(TrainerTest, MemoryGrowsWithBatch)
{
    sim::Bytes prev = 0;
    for (int batch : {16, 32, 64}) {
        TrainReport r = Trainer::simulate(
            makeConfig("inception-v3", 4, batch, CommMethod::NCCL));
        EXPECT_GT(r.gpu0.training, prev);
        prev = r.gpu0.training;
    }
}

TEST(TrainerTest, PaperBatchSizeCapsHold)
{
    // Paper Sec. V-D: batch 64 caps Inception-v3 and ResNet; 128
    // caps GoogLeNet.
    const std::vector<int> candidates = {16, 32, 64, 128, 256};
    TrainConfig cfg = makeConfig("inception-v3", 4, 16,
                                 CommMethod::NCCL);
    EXPECT_EQ(Trainer::maxBatchPerGpu(cfg, candidates), 64);
    cfg.model = "resnet-50";
    EXPECT_EQ(Trainer::maxBatchPerGpu(cfg, candidates), 64);
    cfg.model = "googlenet";
    EXPECT_EQ(Trainer::maxBatchPerGpu(cfg, candidates), 128);
    cfg.model = "lenet";
    EXPECT_EQ(Trainer::maxBatchPerGpu(cfg, candidates), 256);
}

TEST(TrainerTest, OomReportedNotThrown)
{
    TrainReport r = Trainer::simulate(
        makeConfig("inception-v3", 4, 256, CommMethod::NCCL));
    EXPECT_TRUE(r.oom);
    EXPECT_FALSE(r.oomDetail.empty());
    EXPECT_EQ(r.epochSeconds, 0);
}

TEST(TrainerTest, InvalidConfigsAreFatal)
{
    EXPECT_THROW(
        Trainer::simulate(makeConfig("lenet", 0, 16, CommMethod::P2P)),
        sim::FatalError);
    EXPECT_THROW(
        Trainer::simulate(makeConfig("lenet", 9, 16, CommMethod::P2P)),
        sim::FatalError);
    EXPECT_THROW(
        Trainer::simulate(makeConfig("lenet", 1, 0, CommMethod::P2P)),
        sim::FatalError);
    EXPECT_THROW(
        Trainer::simulate(makeConfig("vgg", 1, 16, CommMethod::P2P)),
        sim::FatalError);
}

TEST(TrainerTest, CustomTopologySlowsCommunication)
{
    TrainConfig cfg = makeConfig("alexnet", 4, 16, CommMethod::P2P);
    Trainer nvlink(cfg);
    Trainer pcie(cfg, hw::Topology::pcieOnly8Gpu());
    const TrainReport fast = nvlink.run();
    const TrainReport slow = pcie.run();
    EXPECT_GT(slow.wuSeconds, 2.0 * fast.wuSeconds);
}

TEST(TrainerTest, TensorCoresSpeedUpCompute)
{
    TrainConfig cfg = makeConfig("resnet-50", 1, 32, CommMethod::P2P);
    const TrainReport fp32 = Trainer::simulate(cfg);
    cfg.useTensorCores = true;
    const TrainReport fp16 = Trainer::simulate(cfg);
    EXPECT_LT(fp16.fpBpSeconds, 0.7 * fp32.fpBpSeconds);
}

TEST(TrainerTest, OverlapAblationReducesExposedWu)
{
    TrainConfig cfg = makeConfig("resnet-50", 4, 16, CommMethod::NCCL);
    const TrainReport serial = Trainer::simulate(cfg);
    cfg.overlapBpWu = true;
    const TrainReport overlapped = Trainer::simulate(cfg);
    EXPECT_LT(overlapped.wuSeconds, 0.6 * serial.wuSeconds);
    EXPECT_LE(overlapped.epochSeconds, serial.epochSeconds);
}

TEST(TrainerTest, OneLineMentionsConfig)
{
    TrainReport r =
        Trainer::simulate(makeConfig("lenet", 2, 16, CommMethod::NCCL));
    const std::string line = r.oneLine();
    EXPECT_NE(line.find("lenet"), std::string::npos);
    EXPECT_NE(line.find("nccl"), std::string::npos);
    EXPECT_NE(line.find("x2 gpus"), std::string::npos);
}

TEST(TrainerTest, ProfilerSeesExpectedKernels)
{
    TrainConfig cfg = makeConfig("lenet", 2, 16, CommMethod::NCCL);
    cfg.measuredIterations = 1;
    Trainer trainer(cfg);
    trainer.run();
    const auto &prof = trainer.profiler();
    bool conv_fwd = false, conv_bwd = false, nccl_kernel = false,
         sgd = false;
    for (const auto &row : prof.kernelSummary()) {
        conv_fwd |= row.name == "conv_fwd";
        conv_bwd |= row.name == "conv_bwd";
        nccl_kernel |= row.name == "ncclReduceKernel";
        sgd |= row.name == "sgdUpdate";
    }
    EXPECT_TRUE(conv_fwd);
    EXPECT_TRUE(conv_bwd);
    EXPECT_TRUE(nccl_kernel);
    EXPECT_TRUE(sgd);
    EXPECT_GT(prof.apiTime("cudaStreamSynchronize"), 0u);
    EXPECT_GT(prof.apiTime("ncclGroupOps"), 0u);
}

/** Property sweep: every (model, gpus, method) combination runs. */
class TrainerMatrix
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(TrainerMatrix, CompletesWithConsistentStages)
{
    const auto [model, gpus] = GetParam();
    for (CommMethod m : {CommMethod::P2P, CommMethod::NCCL}) {
        TrainConfig cfg = makeConfig(model, gpus, 16, m);
        cfg.measuredIterations = 1;
        TrainReport r = Trainer::simulate(cfg);
        ASSERT_FALSE(r.oom) << model;
        EXPECT_GT(r.epochSeconds, 0) << model;
        EXPECT_GE(r.fpBpSeconds, 0) << model;
        EXPECT_GE(r.wuSeconds, 0) << model;
        EXPECT_NEAR(r.epochSeconds,
                    r.fpBpSeconds + r.wuSeconds + r.setupSeconds,
                    1e-6 * r.epochSeconds)
            << model;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TrainerMatrix,
    ::testing::Combine(::testing::Values("lenet", "alexnet",
                                         "googlenet", "inception-v3",
                                         "resnet-50"),
                       ::testing::Values(1, 2, 4, 8)));

} // namespace
