/**
 * @file
 * Stage-schedule tests: program shapes, the 1F1B closed form on a
 * uniform synthetic pipeline (tick-exact), the schedule-aware memory
 * planner, and digest parity of the gpipe path with the pre-refactor
 * model_parallel trainer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/model_parallel_trainer.hh"
#include "core/stage_schedule.hh"
#include "core/trainer_base.hh"
#include "cuda/kernel_model.hh"
#include "hw/topology.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace {

using namespace dgxsim;
using core::GpipeSchedule;
using core::ModelParallelTrainer;
using core::OneFOneBSchedule;
using core::ParallelismMode;
using core::StageSlot;
using core::TrainConfig;

// --- schedule programs ------------------------------------------------

/** Every schedule must emit exactly one Fwd and one Bwd per
 * microbatch, each Bwd after its own Fwd. */
void
expectWellFormed(const std::vector<StageSlot> &program, int m)
{
    ASSERT_EQ(program.size(), static_cast<std::size_t>(2 * m));
    std::vector<int> fwd_at(static_cast<std::size_t>(m), -1);
    std::vector<int> bwd_at(static_cast<std::size_t>(m), -1);
    for (std::size_t i = 0; i < program.size(); ++i) {
        const StageSlot &slot = program[i];
        ASSERT_GE(slot.microbatch, 0);
        ASSERT_LT(slot.microbatch, m);
        auto &at = slot.op == StageSlot::Op::Fwd ? fwd_at : bwd_at;
        EXPECT_EQ(at[static_cast<std::size_t>(slot.microbatch)], -1)
            << "duplicate slot";
        at[static_cast<std::size_t>(slot.microbatch)] =
            static_cast<int>(i);
    }
    for (int k = 0; k < m; ++k) {
        EXPECT_LT(fwd_at[static_cast<std::size_t>(k)],
                  bwd_at[static_cast<std::size_t>(k)])
            << "Bwd(" << k << ") before its Fwd";
    }
}

TEST(StageScheduleTest, GpipeIsFillDrain)
{
    const GpipeSchedule sched;
    const int m = 6;
    for (std::size_t s = 0; s < 3; ++s) {
        const auto program = sched.stageProgram(s, 3, m);
        expectWellFormed(program, m);
        for (int k = 0; k < m; ++k) {
            EXPECT_EQ(program[static_cast<std::size_t>(k)].op,
                      StageSlot::Op::Fwd);
            EXPECT_EQ(program[static_cast<std::size_t>(k)].microbatch,
                      k);
            EXPECT_EQ(program[static_cast<std::size_t>(m + k)].op,
                      StageSlot::Op::Bwd);
            EXPECT_EQ(
                program[static_cast<std::size_t>(m + k)].microbatch,
                k);
        }
        EXPECT_EQ(sched.peakLiveMicrobatches(s, 3, m), m);
    }
}

TEST(StageScheduleTest, OneFOneBWarmupSteadyCooldown)
{
    const OneFOneBSchedule sched;
    const std::size_t p = 4;
    const int m = 8;
    for (std::size_t s = 0; s < p; ++s) {
        const auto program = sched.stageProgram(s, p, m);
        expectWellFormed(program, m);
        const int w = std::min(m, static_cast<int>(p - s));
        EXPECT_EQ(sched.peakLiveMicrobatches(s, p, m), w);
        // Warmup: w forwards in microbatch order.
        for (int k = 0; k < w; ++k) {
            EXPECT_EQ(program[static_cast<std::size_t>(k)].op,
                      StageSlot::Op::Fwd);
            EXPECT_EQ(program[static_cast<std::size_t>(k)].microbatch,
                      k);
        }
        // Steady state: Bwd(k - w) then Fwd(k).
        std::size_t i = static_cast<std::size_t>(w);
        for (int k = w; k < m; ++k) {
            EXPECT_EQ(program[i].op, StageSlot::Op::Bwd);
            EXPECT_EQ(program[i].microbatch, k - w);
            ++i;
            EXPECT_EQ(program[i].op, StageSlot::Op::Fwd);
            EXPECT_EQ(program[i].microbatch, k);
            ++i;
        }
        // Cooldown: the trailing w backwards.
        for (int k = m - w; k < m; ++k) {
            EXPECT_EQ(program[i].op, StageSlot::Op::Bwd);
            EXPECT_EQ(program[i].microbatch, k);
            ++i;
        }
    }
}

TEST(StageScheduleTest, DeepPipelineShortensOneFOneBPeak)
{
    const OneFOneBSchedule sched;
    // m > p: warmup saturates at pipeline depth; the last stage
    // holds exactly one live microbatch.
    EXPECT_EQ(sched.peakLiveMicrobatches(0, 8, 32), 8);
    EXPECT_EQ(sched.peakLiveMicrobatches(7, 8, 32), 1);
    // m < p: a stage can never hold more than m.
    EXPECT_EQ(sched.peakLiveMicrobatches(0, 8, 4), 4);
}

TEST(StageScheduleTest, FactoryMapsModes)
{
    EXPECT_STREQ(
        core::makeStageSchedule(ParallelismMode::ModelParallel)
            ->name(),
        "gpipe");
    EXPECT_STREQ(
        core::makeStageSchedule(ParallelismMode::Pipeline)->name(),
        "1f1b");
    EXPECT_THROW(core::makeStageSchedule(ParallelismMode::SyncDp),
                 sim::FatalError);
}

// --- closed form on a uniform pipeline --------------------------------

/** A layer with fixed compute and no data: zero parameters, zero
 * activations, zero HBM traffic, zero-byte boundary tensors. */
class UniformLayer final : public dnn::Layer
{
  public:
    explicit UniformLayer(const std::string &name)
        : Layer(dnn::LayerKind::Conv, name, dnn::TensorShape{},
                dnn::TensorShape{})
    {
    }
    double forwardFlops(int) const override { return 4e9; }
    double forwardBytes(int) const override { return 0; }
};

dnn::Network
uniformNetwork(int stages)
{
    dnn::Network net("uniform", dnn::TensorShape{});
    for (int i = 0; i < stages; ++i) {
        net.add(std::make_unique<UniformLayer>(
            "u" + std::to_string(i)));
    }
    return net;
}

/** Full NVLink mesh with zero link latency: boundary copies of zero
 * bytes complete in the same tick they start. */
hw::Topology
zeroLatencyMesh(int gpus)
{
    hw::Topology topo;
    std::vector<hw::NodeId> ids;
    for (int g = 0; g < gpus; ++g) {
        ids.push_back(topo.addNode(hw::NodeKind::Gpu,
                                   "GPU" + std::to_string(g)));
    }
    for (int a = 0; a < gpus; ++a) {
        for (int b = a + 1; b < gpus; ++b) {
            topo.addLink(hw::Link{ids[static_cast<std::size_t>(a)],
                                  ids[static_cast<std::size_t>(b)],
                                  hw::LinkType::NVLink, 1, 25.0,
                                  0.0});
        }
    }
    return topo;
}

TrainConfig
uniformConfig(int gpus, int microbatches, ParallelismMode mode)
{
    TrainConfig cfg;
    cfg.model = "uniform";
    cfg.numGpus = gpus;
    cfg.batchPerGpu = 16;
    cfg.mode = mode;
    cfg.microbatches = microbatches;
    cfg.audit = true;
    // Uniform stages need uniform kernels: no fixed per-launch tail.
    cfg.gpuSpec.kernelTailUs = 0;
    return cfg;
}

/** One stage's fwd (== bwd) kernel ticks under uniformConfig. */
sim::Tick
uniformStageTicks(const TrainConfig &cfg)
{
    const UniformLayer layer("probe");
    const int ub_size = cfg.globalBatch() / cfg.microbatches;
    return cuda::kernelDuration(
        cfg.gpuSpec,
        cuda::KernelCost{layer.forwardFlops(ub_size), 0, false, 1.0});
}

TEST(PipelineClosedFormTest, OneFOneBMatchesBubbleTheory)
{
    const int p = 4;
    const int m = 8;
    const TrainConfig cfg =
        uniformConfig(p, m, ParallelismMode::Pipeline);
    ModelParallelTrainer trainer(cfg, uniformNetwork(p),
                                 zeroLatencyMesh(p));
    const core::TrainReport r = trainer.run();
    ASSERT_FALSE(r.oom);

    // f == b (no parameters, so backward FLOPs default to forward);
    // zero-byte boundaries and zero link latency make every transfer
    // instantaneous. Uniform 1F1B theory: makespan is exactly
    // (m + p - 1) * (f + b) ticks and the bubble fraction is
    // (p - 1) / (m + p - 1).
    const sim::Tick f = uniformStageTicks(cfg);
    ASSERT_GT(f, 0);
    const sim::Tick expected =
        static_cast<sim::Tick>(m + p - 1) * (2 * f);
    EXPECT_DOUBLE_EQ(r.iterationSeconds, sim::ticksToSec(expected));
    EXPECT_NEAR(r.bubbleFraction,
                static_cast<double>(p - 1) / (m + p - 1), 1e-12);
    EXPECT_TRUE(r.audited);
    EXPECT_EQ(r.auditViolations, 0u);
}

TEST(PipelineClosedFormTest, GpipeMatchesTheSameClosedForm)
{
    // With f == b and uniform stages, gpipe's fill-drain makespan is
    // also (m + p - 1)(f + b): 1F1B's win here is memory, not time.
    const int p = 4;
    const int m = 8;
    const TrainConfig cfg =
        uniformConfig(p, m, ParallelismMode::ModelParallel);
    ModelParallelTrainer trainer(cfg, uniformNetwork(p),
                                 zeroLatencyMesh(p));
    const core::TrainReport r = trainer.run();
    ASSERT_FALSE(r.oom);
    const sim::Tick f = uniformStageTicks(cfg);
    const sim::Tick expected =
        static_cast<sim::Tick>(m + p - 1) * (2 * f);
    EXPECT_DOUBLE_EQ(r.iterationSeconds, sim::ticksToSec(expected));
    EXPECT_NEAR(r.bubbleFraction,
                static_cast<double>(p - 1) / (m + p - 1), 1e-12);
}

// --- schedule-aware memory planner ------------------------------------

TEST(PipelineMemoryTest, ReportsPeakLiveMicrobatchesPerStage)
{
    TrainConfig cfg;
    cfg.model = "resnet-50";
    cfg.numGpus = 4;
    cfg.batchPerGpu = 16;
    cfg.microbatches = 8;

    cfg.mode = ParallelismMode::Pipeline;
    const auto pipe = core::TrainerBase::simulate(cfg);
    ASSERT_FALSE(pipe.oom);
    EXPECT_EQ(pipe.stagePeakLiveMicrobatches,
              (std::vector<int>{4, 3, 2, 1}));

    cfg.mode = ParallelismMode::ModelParallel;
    const auto gpipe = core::TrainerBase::simulate(cfg);
    ASSERT_FALSE(gpipe.oom);
    EXPECT_EQ(gpipe.stagePeakLiveMicrobatches,
              (std::vector<int>{8, 8, 8, 8}));

    // The planner charge is visible as real bytes: every 1F1B stage
    // holds at most `stages` live microbatches instead of all 8.
    EXPECT_LT(pipe.gpu0.training, gpipe.gpu0.training);
}

TEST(PipelineMemoryTest, OneFOneBRaisesMaxBatch)
{
    // Deep microbatching under gpipe keeps every activation live and
    // OOMs first; 1F1B caps the live set at the stage count, so the
    // same model fits a strictly larger per-GPU batch.
    TrainConfig cfg;
    cfg.model = "bert-base";
    cfg.numGpus = 8;
    cfg.microbatches = 32;

    cfg.mode = ParallelismMode::ModelParallel;
    const auto gpipe_best = core::TrainerBase::maxBatchPerGpu(
        cfg, {4, 8, 16, 32, 64, 128});
    cfg.mode = ParallelismMode::Pipeline;
    const auto pipe_best = core::TrainerBase::maxBatchPerGpu(
        cfg, {4, 8, 16, 32, 64, 128});

    ASSERT_TRUE(pipe_best.has_value());
    ASSERT_TRUE(gpipe_best.has_value());
    EXPECT_GT(*pipe_best, *gpipe_best);
}

// --- digest parity with the pre-refactor trainer ----------------------

/**
 * The gpipe path replays the legacy model_parallel event stream
 * bit-for-bit. These digests were recorded on the pre-refactor
 * trainer; any drift means the refactor changed the simulated
 * history, not just the code structure.
 */
TEST(PipelineDigestParityTest, GpipeReplaysPreRefactorDigests)
{
    const struct
    {
        const char *model;
        int gpus;
        int batch;
        int microbatches;
        std::uint64_t digest;
    } pins[] = {
        {"lenet", 4, 16, 0, 0xd4bb6dfd0b100d35ull},
        {"alexnet", 8, 32, 0, 0x16e69bc2a7b968a9ull},
        {"resnet-50", 4, 16, 8, 0x20f12e1f18818ff0ull},
    };
    for (const auto &pin : pins) {
        TrainConfig cfg;
        cfg.model = pin.model;
        cfg.numGpus = pin.gpus;
        cfg.batchPerGpu = pin.batch;
        cfg.microbatches = pin.microbatches;
        cfg.mode = ParallelismMode::ModelParallel;
        const auto r = core::TrainerBase::simulate(cfg);
        ASSERT_FALSE(r.oom) << pin.model;
        EXPECT_EQ(r.digest, pin.digest) << pin.model;
    }
}

TEST(PipelineDigestParityTest, PipelineModeIsDeterministic)
{
    TrainConfig cfg;
    cfg.model = "lenet";
    cfg.numGpus = 4;
    cfg.batchPerGpu = 16;
    cfg.mode = ParallelismMode::Pipeline;
    const auto a = core::TrainerBase::simulate(cfg);
    const auto b = core::TrainerBase::simulate(cfg);
    ASSERT_FALSE(a.oom);
    EXPECT_EQ(a.digest, b.digest);
    // 1F1B produces a different event history than gpipe.
    cfg.mode = ParallelismMode::ModelParallel;
    const auto g = core::TrainerBase::simulate(cfg);
    EXPECT_NE(a.digest, g.digest);
}

} // namespace
