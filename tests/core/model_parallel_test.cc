/**
 * @file
 * Tests for the model-parallel extension: partitioning, pipelining,
 * and the paper's Sec. I parallelism-choice claim.
 */

#include <gtest/gtest.h>

#include "core/model_parallel_trainer.hh"
#include "core/trainer.hh"
#include "dnn/models.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using namespace dgxsim::core;

TrainConfig
makeConfig(const std::string &model, int gpus)
{
    TrainConfig cfg;
    cfg.model = model;
    cfg.numGpus = gpus;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::NCCL;
    return cfg;
}

TEST(ModelParallelTest, PartitionCoversEveryLayerOnce)
{
    ModelParallelTrainer trainer(makeConfig("resnet-50", 4));
    const auto &stages = trainer.stages();
    ASSERT_EQ(stages.size(), 4u);
    std::size_t next = 0;
    const std::size_t layers =
        dnn::buildResNet50().layers().size();
    for (const auto &[first, last] : stages) {
        EXPECT_EQ(first, next);
        EXPECT_GE(last, first);
        next = last + 1;
    }
    EXPECT_EQ(next, layers);
}

TEST(ModelParallelTest, PartitionBalancesFlops)
{
    const auto r =
        ModelParallelTrainer::simulate(makeConfig("inception-v3", 4));
    ASSERT_EQ(r.stageFlopsShare.size(), 4u);
    double total = 0;
    for (double share : r.stageFlopsShare) {
        EXPECT_GT(share, 0.10);
        EXPECT_LT(share, 0.45);
        total += share;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ModelParallelTest, MicrobatchingShrinksTheBubble)
{
    const auto cfg = makeConfig("resnet-50", 4);
    const auto ub1 = ModelParallelTrainer::simulate(cfg, 1);
    const auto ub4 = ModelParallelTrainer::simulate(cfg, 4);
    const auto ub16 = ModelParallelTrainer::simulate(cfg, 16);
    // A single microbatch leaves (S-1)/S of the pipeline idle.
    EXPECT_GT(ub1.bubbleFraction, 0.6);
    EXPECT_LT(ub4.bubbleFraction, ub1.bubbleFraction);
    EXPECT_LT(ub16.bubbleFraction, ub4.bubbleFraction);
    EXPECT_LT(ub4.epochSeconds, ub1.epochSeconds);
}

TEST(ModelParallelTest, PaperParallelismChoiceClaim)
{
    // Paper Sec. I: data parallelism suits conv-heavy networks;
    // model parallelism suits FC-heavy ones. Compare at equal global
    // batch on 4 GPUs.
    const auto alex_cfg = makeConfig("alexnet", 4);
    const double alex_dp = Trainer::simulate(alex_cfg).epochSeconds;
    const double alex_mp =
        ModelParallelTrainer::simulate(alex_cfg, 4).epochSeconds;
    EXPECT_LT(alex_mp, alex_dp) << "FC-heavy AlexNet";

    const auto res_cfg = makeConfig("resnet-50", 4);
    const double res_dp = Trainer::simulate(res_cfg).epochSeconds;
    const double res_mp =
        ModelParallelTrainer::simulate(res_cfg, 4).epochSeconds;
    EXPECT_GT(res_mp, res_dp) << "conv-heavy ResNet-50";
}

TEST(ModelParallelTest, WeightPlacementFollowsLayers)
{
    const auto r =
        ModelParallelTrainer::simulate(makeConfig("alexnet", 4));
    ASSERT_EQ(r.stageParamBytes.size(), 4u);
    sim::Bytes total = 0;
    for (sim::Bytes b : r.stageParamBytes)
        total += b;
    EXPECT_EQ(total, dnn::buildAlexNet().paramBytes());
    // AlexNet's FC head concentrates most parameters in the last
    // stage — the memory-imbalance cost of model parallelism.
    EXPECT_GT(r.stageParamBytes.back(), total / 2);
}

TEST(ModelParallelTest, ActivationTrafficFlowsBothDirections)
{
    ModelParallelTrainer trainer(makeConfig("resnet-50", 4), 4);
    const auto r = trainer.run();
    // 3 boundaries x 2 directions x 4 microbatches of traffic.
    EXPECT_GT(r.activationBytesPerIter, 0);
}

TEST(ModelParallelTest, DeterministicAcrossRuns)
{
    const auto cfg = makeConfig("googlenet", 4);
    const auto a = ModelParallelTrainer::simulate(cfg, 4);
    const auto b = ModelParallelTrainer::simulate(cfg, 4);
    EXPECT_DOUBLE_EQ(a.epochSeconds, b.epochSeconds);
    EXPECT_DOUBLE_EQ(a.bubbleFraction, b.bubbleFraction);
}

TEST(ModelParallelTest, InvalidConfigsAreFatal)
{
    auto cfg = makeConfig("lenet", 4);
    cfg.batchPerGpu = 7; // global batch 28 not divisible by 8 ubatches
    EXPECT_THROW(ModelParallelTrainer::simulate(cfg, 8),
                 sim::FatalError);
    EXPECT_THROW(ModelParallelTrainer::simulate(makeConfig("lenet", 0)),
                 sim::FatalError);
}

TEST(ModelParallelTest, OneLineMentionsBubble)
{
    const auto r =
        ModelParallelTrainer::simulate(makeConfig("alexnet", 2), 2);
    EXPECT_NE(r.oneLine().find("bubble"), std::string::npos);
}

} // namespace
