/**
 * @file
 * Determinism harness tests: identical configurations must yield
 * identical event-history digests run after run, and fully audited
 * paper-configuration runs must finish with zero violations.
 */

#include <gtest/gtest.h>

#include "core/determinism.hh"
#include "core/trainer.hh"

namespace {

using namespace dgxsim;
using core::TrainConfig;

TrainConfig
lenetP2p4()
{
    TrainConfig cfg;
    cfg.model = "lenet";
    cfg.numGpus = 4;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::P2P;
    return cfg;
}

TrainConfig
alexnetNccl8()
{
    TrainConfig cfg;
    cfg.model = "alexnet";
    cfg.numGpus = 8;
    cfg.batchPerGpu = 32;
    cfg.method = comm::CommMethod::NCCL;
    return cfg;
}

TEST(DeterminismTest, LenetP2pDigestsMatch)
{
    const auto check = core::checkDeterminism(lenetP2p4());
    EXPECT_FALSE(check.oom);
    EXPECT_TRUE(check.deterministic) << check.summary();
    EXPECT_NE(check.firstDigest, 0u);
}

TEST(DeterminismTest, AlexnetNcclDigestsMatch)
{
    const auto check = core::checkDeterminism(alexnetNccl8());
    EXPECT_FALSE(check.oom);
    EXPECT_TRUE(check.deterministic) << check.summary();
}

TEST(DeterminismTest, DifferentConfigsDiffer)
{
    // The digest actually discriminates histories: changing the
    // workload or the communicator changes the digest.
    EXPECT_NE(core::runDigest(lenetP2p4()),
              core::runDigest(alexnetNccl8()));
    TrainConfig nccl = lenetP2p4();
    nccl.method = comm::CommMethod::NCCL;
    EXPECT_NE(core::runDigest(lenetP2p4()), core::runDigest(nccl));
}

TEST(DeterminismTest, AsyncModeDigestsMatch)
{
    TrainConfig cfg = lenetP2p4();
    cfg.mode = core::ParallelismMode::AsyncPs;
    const auto check = core::checkDeterminism(cfg);
    EXPECT_FALSE(check.oom);
    EXPECT_TRUE(check.deterministic) << check.summary();
    EXPECT_NE(check.firstDigest, 0u);
}

TEST(DeterminismTest, ModelParallelModeDigestsMatch)
{
    TrainConfig cfg = alexnetNccl8();
    cfg.mode = core::ParallelismMode::ModelParallel;
    cfg.method = comm::CommMethod::P2P;
    const auto check = core::checkDeterminism(cfg);
    EXPECT_FALSE(check.oom);
    EXPECT_TRUE(check.deterministic) << check.summary();
}

TEST(DeterminismTest, ModesReplayDistinctHistories)
{
    // The three strategies schedule different events over the same
    // machine, so their digests must all differ.
    TrainConfig sync = lenetP2p4();
    TrainConfig async = sync;
    async.mode = core::ParallelismMode::AsyncPs;
    TrainConfig mp = sync;
    mp.mode = core::ParallelismMode::ModelParallel;
    const std::uint64_t ds = core::runDigest(sync);
    const std::uint64_t da = core::runDigest(async);
    const std::uint64_t dm = core::runDigest(mp);
    EXPECT_NE(ds, da);
    EXPECT_NE(ds, dm);
    EXPECT_NE(da, dm);
}

TEST(DeterminismTest, AuditDoesNotPerturbTheSimulation)
{
    // The auditor is a pure observer: digests with and without it
    // must be identical.
    TrainConfig plain = lenetP2p4();
    TrainConfig audited = plain;
    audited.audit = true;
    EXPECT_EQ(core::runDigest(plain), core::runDigest(audited));
}

TEST(DeterminismTest, AuditedPaperConfigsRunClean)
{
    for (TrainConfig cfg : {lenetP2p4(), alexnetNccl8()}) {
        cfg.audit = true;
        const auto report = core::Trainer::simulate(cfg);
        ASSERT_FALSE(report.oom) << cfg.model;
        EXPECT_TRUE(report.audited) << cfg.model;
        EXPECT_GT(report.auditChecks, 0u) << cfg.model;
        EXPECT_EQ(report.auditViolations, 0u) << cfg.model;
        EXPECT_NE(report.digest, 0u) << cfg.model;
    }
}

TEST(DeterminismTest, AuditedDualRingOverlapRunsClean)
{
    // The busiest scheduling mix: NCCL dual rings with BP/WU overlap
    // and a fused all-reduce, all under the strict auditor.
    TrainConfig cfg = alexnetNccl8();
    cfg.audit = true;
    cfg.overlapBpWu = true;
    cfg.useAllReduce = true;
    cfg.commConfig.ncclRings = 2;
    const auto report = core::Trainer::simulate(cfg);
    ASSERT_FALSE(report.oom);
    EXPECT_TRUE(report.audited);
    EXPECT_EQ(report.auditViolations, 0u);
    const auto again = core::Trainer::simulate(cfg);
    EXPECT_EQ(report.digest, again.digest);
}

} // namespace
