/**
 * @file
 * Tests for the dgxprof argument parser and config mapping.
 */

#include <gtest/gtest.h>

#include "core/cli.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using core::cli::Args;

TEST(CliArgsTest, ParsesPositionalAndOptions)
{
    const Args args = Args::parse(
        {"train", "--model", "lenet", "--gpus=8", "--report"});
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "train");
    EXPECT_EQ(args.get("model"), "lenet");
    EXPECT_EQ(args.getInt("gpus", 1), 8);
    EXPECT_TRUE(args.has("report"));
    EXPECT_FALSE(args.has("trace"));
}

TEST(CliArgsTest, FlagFollowedByOptionStaysBoolean)
{
    const Args args =
        Args::parse({"--overlap", "--batch", "32", "--tensor-cores"});
    EXPECT_TRUE(args.has("overlap"));
    EXPECT_EQ(args.get("overlap"), "");
    EXPECT_EQ(args.getInt("batch", 0), 32);
    EXPECT_TRUE(args.has("tensor-cores"));
}

TEST(CliArgsTest, DefaultsWhenMissing)
{
    const Args args = Args::parse({});
    EXPECT_EQ(args.get("model", "resnet-50"), "resnet-50");
    EXPECT_EQ(args.getInt("gpus", 4), 4);
    EXPECT_DOUBLE_EQ(args.getDouble("fusion-mb", 2.5), 2.5);
    EXPECT_EQ(args.getIntList("gpus", {1, 2}),
              (std::vector<int>{1, 2}));
}

TEST(CliArgsTest, IntListParsing)
{
    const Args args = Args::parse({"--gpus", "1,2,4,8"});
    EXPECT_EQ(args.getIntList("gpus", {}),
              (std::vector<int>{1, 2, 4, 8}));
}

TEST(CliArgsTest, GarbageNumbersAreFatal)
{
    const Args args =
        Args::parse({"--gpus", "four", "--fusion-mb", "lots",
                     "--batches", "16,x"});
    EXPECT_THROW(args.getInt("gpus", 1), sim::FatalError);
    EXPECT_THROW(args.getDouble("fusion-mb", 0), sim::FatalError);
    EXPECT_THROW(args.getIntList("batches", {}), sim::FatalError);
}

TEST(CliConfigTest, MapsAllTrainingOptions)
{
    const Args args = Args::parse(
        {"--model", "vgg-16", "--gpus", "8", "--batch", "32",
         "--method", "p2p", "--images", "512000", "--tensor-cores",
         "--overlap", "--allreduce", "--fusion-mb", "16",
         "--rings", "2"});
    const core::TrainConfig cfg = core::cli::configFromArgs(args);
    EXPECT_EQ(cfg.model, "vgg-16");
    EXPECT_EQ(cfg.numGpus, 8);
    EXPECT_EQ(cfg.batchPerGpu, 32);
    EXPECT_EQ(cfg.method, comm::CommMethod::P2P);
    EXPECT_EQ(cfg.datasetImages, 512000u);
    EXPECT_TRUE(cfg.useTensorCores);
    EXPECT_TRUE(cfg.overlapBpWu);
    EXPECT_TRUE(cfg.useAllReduce);
    EXPECT_DOUBLE_EQ(cfg.bucketFusionMB, 16.0);
    EXPECT_EQ(cfg.commConfig.ncclRings, 2);
}

TEST(CliConfigTest, P100FlagSwapsTheGpu)
{
    const Args args = Args::parse({"--p100"});
    const core::TrainConfig cfg = core::cli::configFromArgs(args);
    EXPECT_EQ(cfg.gpuSpec.name, hw::GpuSpec::pascalP100().name);
}

TEST(CliConfigTest, BadMethodIsFatal)
{
    const Args args = Args::parse({"--method", "mpi"});
    EXPECT_THROW(core::cli::configFromArgs(args), sim::FatalError);
}

TEST(CliConfigTest, MapsParallelismMode)
{
    const Args args = Args::parse(
        {"--mode", "async_ps", "--async-iters", "12",
         "--microbatches", "6"});
    const core::TrainConfig cfg = core::cli::configFromArgs(args);
    EXPECT_EQ(cfg.mode, core::ParallelismMode::AsyncPs);
    EXPECT_EQ(cfg.asyncItersPerWorker, 12);
    EXPECT_EQ(cfg.microbatches, 6);
}

TEST(CliConfigTest, ModeDefaultsToSyncAndAcceptsAliases)
{
    // The deprecated *subcommand* aliases (dgxprof async/modelpar/mp)
    // are gone — see the dgxprof_alias_*_removed ctest entries — but
    // the --mode *value* aliases are supported spelling, not
    // deprecation, and must keep working.
    EXPECT_EQ(core::cli::configFromArgs(Args::parse({})).mode,
              core::ParallelismMode::SyncDp);
    EXPECT_EQ(core::cli::configFromArgs(
                  Args::parse({"--mode", "mp"}))
                  .mode,
              core::ParallelismMode::ModelParallel);
    EXPECT_EQ(core::cli::configFromArgs(
                  Args::parse({"--mode", "sync"}))
                  .mode,
              core::ParallelismMode::SyncDp);
}

TEST(CliConfigTest, BadModeIsFatal)
{
    const Args args = Args::parse({"--mode", "hybrid"});
    EXPECT_THROW(core::cli::configFromArgs(args), sim::FatalError);
}

TEST(CliConfigTest, BaseConfigIgnoresModeForGridCommands)
{
    // Campaign passes list-valued --mode; the scalar parser must not
    // touch it (it would fatal on "async_ps,model_parallel").
    const Args args =
        Args::parse({"--mode", "async_ps,model_parallel"});
    const core::TrainConfig cfg = core::cli::baseConfigFromArgs(args);
    EXPECT_EQ(cfg.mode, core::ParallelismMode::SyncDp);
}

TEST(CliConfigTest, MapsPlatformAndDefaultsToDgx1v)
{
    EXPECT_EQ(core::cli::configFromArgs(Args::parse({})).platform,
              "dgx1v");
    const Args args = Args::parse(
        {"--platform", "dgx2", "--gpus", "16"});
    const core::TrainConfig cfg = core::cli::configFromArgs(args);
    EXPECT_EQ(cfg.platform, "dgx2");
    EXPECT_EQ(cfg.numGpus, 16);
}

TEST(CliConfigTest, BadPlatformIsFatal)
{
    const Args args = Args::parse({"--platform", "dgx3"});
    EXPECT_THROW(core::cli::configFromArgs(args), sim::FatalError);
}

TEST(CliConfigTest, GpusBeyondThePlatformAreFatal)
{
    // 16 GPUs fit the DGX-2 but not the DGX-1; the parser validates
    // the pair up front instead of failing deep in Machine setup.
    EXPECT_THROW(core::cli::configFromArgs(
                     Args::parse({"--gpus", "16"})),
                 sim::FatalError);
    EXPECT_THROW(core::cli::configFromArgs(
                     Args::parse({"--gpus", "0"})),
                 sim::FatalError);
    EXPECT_NO_THROW(core::cli::configFromArgs(Args::parse(
        {"--platform", "dgx2", "--gpus", "16"})));
}

TEST(CliConfigTest, BaseConfigIgnoresPlatformForGridCommands)
{
    // Campaign passes list-valued --platform; the scalar parser must
    // not touch it (makePlatform would fatal on "dgx1p,dgx2").
    const Args args = Args::parse({"--platform", "dgx1p,dgx2"});
    const core::TrainConfig cfg = core::cli::baseConfigFromArgs(args);
    EXPECT_EQ(cfg.platform, "dgx1v");
}

} // namespace
