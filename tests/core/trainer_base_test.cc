/**
 * @file
 * TrainerBase strategy-dispatch tests: the registry constructs the
 * right strategy per ParallelismMode, every strategy self-describes
 * its mode in the report, memory probing and the OOM verdict work
 * uniformly across modes (async and pipeline configurations that
 * cannot fit must report oom instead of pretending to run).
 */

#include <gtest/gtest.h>

#include "core/async_trainer.hh"
#include "core/model_parallel_trainer.hh"
#include "core/parallelism.hh"
#include "core/trainer.hh"
#include "core/trainer_base.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using core::ParallelismMode;
using core::TrainConfig;
using core::TrainerBase;
using core::TrainReport;

TrainConfig
lenet2(ParallelismMode mode)
{
    TrainConfig cfg;
    cfg.model = "lenet";
    cfg.numGpus = 2;
    cfg.batchPerGpu = 16;
    cfg.method = comm::CommMethod::P2P;
    cfg.mode = mode;
    return cfg;
}

TEST(TrainerBaseTest, MakeDispatchesOnMode)
{
    const auto sync = TrainerBase::make(lenet2(ParallelismMode::SyncDp));
    EXPECT_NE(dynamic_cast<core::Trainer *>(sync.get()), nullptr);
    const auto async =
        TrainerBase::make(lenet2(ParallelismMode::AsyncPs));
    EXPECT_NE(dynamic_cast<core::AsyncTrainer *>(async.get()), nullptr);
    const auto mp =
        TrainerBase::make(lenet2(ParallelismMode::ModelParallel));
    EXPECT_NE(dynamic_cast<core::ModelParallelTrainer *>(mp.get()),
              nullptr);
}

TEST(TrainerBaseTest, StrategiesNormalizeTheirMode)
{
    // Constructing a strategy directly (bypassing make()) still
    // yields a self-describing report: each constructor pins
    // config.mode to its own mode.
    core::AsyncTrainer async(lenet2(ParallelismMode::SyncDp));
    EXPECT_EQ(async.config().mode, ParallelismMode::AsyncPs);
    core::ModelParallelTrainer mp(lenet2(ParallelismMode::SyncDp));
    EXPECT_EQ(mp.config().mode, ParallelismMode::ModelParallel);
    core::Trainer sync(lenet2(ParallelismMode::SyncDp));
    EXPECT_EQ(sync.config().mode, ParallelismMode::SyncDp);
}

TEST(TrainerBaseTest, SimulateRunsEveryMode)
{
    for (ParallelismMode mode : core::allParallelismModes()) {
        const TrainReport r = TrainerBase::simulate(lenet2(mode));
        EXPECT_FALSE(r.oom) << parallelismModeName(mode);
        EXPECT_GT(r.epochSeconds, 0) << parallelismModeName(mode);
        EXPECT_NE(r.digest, 0u) << parallelismModeName(mode);
        EXPECT_EQ(r.config.mode, mode);
    }
}

TEST(TrainerBaseTest, MemoryProbeSkipsIterations)
{
    for (ParallelismMode mode : core::allParallelismModes()) {
        TrainConfig cfg = lenet2(mode);
        cfg.measuredIterations = 0;
        const TrainReport r = TrainerBase::simulate(cfg);
        EXPECT_FALSE(r.oom) << parallelismModeName(mode);
        EXPECT_EQ(r.epochSeconds, 0) << parallelismModeName(mode);
        EXPECT_GT(r.gpu0.training, 0u) << parallelismModeName(mode);
    }
}

TEST(TrainerBaseTest, AsyncOversizedBatchReportsOom)
{
    // Regression: the async strategy used to skip device allocation
    // entirely, so impossible configurations silently "fit".
    TrainConfig cfg = lenet2(ParallelismMode::AsyncPs);
    cfg.model = "resnet-50";
    cfg.batchPerGpu = 4096;
    const TrainReport r = TrainerBase::simulate(cfg);
    EXPECT_TRUE(r.oom);
    EXPECT_FALSE(r.oomDetail.empty());
}

TEST(TrainerBaseTest, ModelParallelOversizedBatchReportsOom)
{
    // Regression companion: the pipeline strategy also never
    // allocated stage memory before this refactor.
    TrainConfig cfg = lenet2(ParallelismMode::ModelParallel);
    cfg.model = "resnet-50";
    cfg.batchPerGpu = 8192;
    const TrainReport r = TrainerBase::simulate(cfg);
    EXPECT_TRUE(r.oom);
    EXPECT_FALSE(r.oomDetail.empty());
}

TEST(TrainerBaseTest, MaxBatchPerGpuWorksPerMode)
{
    for (ParallelismMode mode : core::allParallelismModes()) {
        TrainConfig cfg = lenet2(mode);
        const auto best =
            TrainerBase::maxBatchPerGpu(cfg, {16, 32, 64});
        ASSERT_TRUE(best.has_value()) << parallelismModeName(mode);
        EXPECT_EQ(*best, 64) << parallelismModeName(mode);
    }
    TrainConfig big = lenet2(ParallelismMode::AsyncPs);
    big.model = "resnet-50";
    EXPECT_FALSE(
        TrainerBase::maxBatchPerGpu(big, {4096}).has_value());
}

TEST(TrainerBaseTest, ParallelismModeNamesRoundTrip)
{
    for (ParallelismMode mode : core::allParallelismModes())
        EXPECT_EQ(core::parseParallelismMode(
                      core::parallelismModeName(mode)),
                  mode);
    EXPECT_EQ(core::parseParallelismMode("sync"),
              ParallelismMode::SyncDp);
    EXPECT_EQ(core::parseParallelismMode("async"),
              ParallelismMode::AsyncPs);
    EXPECT_EQ(core::parseParallelismMode("mp"),
              ParallelismMode::ModelParallel);
    EXPECT_THROW(core::parseParallelismMode("bogus"),
                 sim::FatalError);
}

} // namespace
