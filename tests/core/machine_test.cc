/**
 * @file
 * Machine substrate tests: configuration validation, stream / host
 * thread factories, the shared memory planners (data-parallel and
 * model-parallel layouts), and the determinism digest.
 */

#include <gtest/gtest.h>

#include "comm/compression.hh"
#include "core/machine.hh"
#include "cuda/memory_tracker.hh"
#include "dnn/models.hh"
#include "hw/topology.hh"
#include "sim/logging.hh"

namespace {

using namespace dgxsim;
using core::Machine;
using core::TrainConfig;

TrainConfig
lenet2()
{
    TrainConfig cfg;
    cfg.model = "lenet";
    cfg.numGpus = 2;
    cfg.batchPerGpu = 16;
    return cfg;
}

TEST(MachineTest, ValidatesConfig)
{
    const hw::Topology topo = hw::Topology::dgx1Volta();
    TrainConfig bad = lenet2();
    bad.numGpus = 0;
    EXPECT_THROW(Machine(bad, topo), sim::FatalError);
    bad = lenet2();
    bad.numGpus = 9;
    EXPECT_THROW(Machine(bad, topo), sim::FatalError);
    bad = lenet2();
    bad.batchPerGpu = 0;
    EXPECT_THROW(Machine(bad, topo), sim::FatalError);
    bad = lenet2();
    bad.datasetImages = 0;
    EXPECT_THROW(Machine(bad, topo), sim::FatalError);
}

TEST(MachineTest, OwnsDevicesStreamsAndThreads)
{
    const TrainConfig cfg = lenet2();
    Machine machine(cfg, hw::Topology::dgx1Volta());
    EXPECT_EQ(machine.gpus().size(), 2u);
    cuda::Stream &s0 = machine.addStream(0, "compute0");
    cuda::Stream &s1 = machine.addStream(1, "compute1");
    EXPECT_NE(&s0, &s1);
    cuda::HostThread &worker = machine.addHostThread("worker");
    (void)worker;
    EXPECT_GT(machine.launchOverhead(), 0);
}

TEST(MachineTest, DataParallelPlannerAllocatesReplicas)
{
    const TrainConfig cfg = lenet2();
    Machine machine(cfg, hw::Topology::dgx1Volta());
    machine.setupDataParallelMemory(dnn::buildByName(cfg.model));
    core::TrainReport report;
    machine.fillMemoryReport(report);
    // Every replica holds the model; the root additionally holds the
    // aggregation buffers.
    EXPECT_GT(report.gpux.training, 0u);
    EXPECT_GT(report.gpu0.training, report.gpux.training);
}

TEST(MachineTest, ErrorFeedbackResidualsChargeDeviceMemory)
{
    // Error-feedback compressors (dgc, efsignsgd, onebit) keep one
    // fp32 residual per parameter on every worker; feedback-free
    // sparsifiers (randomk) and the raw wire keep none. The planner
    // must pin exactly net.paramBytes() of CommBuffers per GPU.
    const dnn::Network net = dnn::buildByName("lenet");
    const sim::Bytes params = net.paramBytes();
    ASSERT_GT(params, 0u);

    const auto workerCommBytes = [&](comm::Compressor comp) {
        TrainConfig cfg = lenet2();
        cfg.commConfig.compression = comp;
        Machine machine(cfg, hw::Topology::dgx1Volta());
        machine.setupDataParallelMemory(net);
        // GPU 1 is a plain worker (no root aggregation buffers).
        return machine.device(1).mem().usedBy(
            cuda::MemCategory::CommBuffers);
    };

    const sim::Bytes none = workerCommBytes(comm::Compressor::None);
    EXPECT_EQ(workerCommBytes(comm::Compressor::RandomK), none);
    EXPECT_EQ(workerCommBytes(comm::Compressor::Dgc), none + params);
    EXPECT_EQ(workerCommBytes(comm::Compressor::EfSignSgd),
              none + params);
    EXPECT_EQ(workerCommBytes(comm::Compressor::OneBit),
              none + params);

    // A single GPU never communicates, so no residual is pinned.
    TrainConfig solo = lenet2();
    solo.numGpus = 1;
    solo.commConfig.compression = comm::Compressor::Dgc;
    Machine machine(solo, hw::Topology::dgx1Volta());
    machine.setupDataParallelMemory(net);
    EXPECT_EQ(machine.device(0).mem().usedBy(
                  cuda::MemCategory::CommBuffers),
              0u);
}

TEST(MachineTest, DataParallelPlannerThrowsOnOom)
{
    TrainConfig cfg = lenet2();
    cfg.model = "resnet-50";
    cfg.batchPerGpu = 4096;
    Machine machine(cfg, hw::Topology::dgx1Volta());
    EXPECT_THROW(
        machine.setupDataParallelMemory(dnn::buildByName(cfg.model)),
        sim::FatalError);
}

TEST(MachineTest, ModelParallelPlannerSplitsWeights)
{
    TrainConfig cfg = lenet2();
    Machine machine(cfg, hw::Topology::dgx1Volta());
    const dnn::Network net = dnn::buildByName(cfg.model);
    // Two stages: [0, mid) and [mid, n). Each stage holds only its
    // own layers, so neither side should see the full replica cost.
    const std::size_t mid = net.layers().size() / 2;
    const std::vector<std::pair<std::size_t, std::size_t>> stages = {
        {0, mid - 1}, {mid, net.layers().size() - 1}};
    machine.setupModelParallelMemory(net, stages, cfg.batchPerGpu,
                                     {2, 2}, 2);
    core::TrainReport report;
    machine.fillMemoryReport(report);
    EXPECT_GT(report.gpu0.training, 0u);
    EXPECT_GT(report.gpux.training, 0u);
}

TEST(MachineTest, DigestIsDeterministic)
{
    const TrainConfig cfg = lenet2();
    const auto digestOnce = [&cfg] {
        Machine machine(cfg, hw::Topology::dgx1Volta());
        machine.addStream(0, "s");
        machine.queue().run();
        return machine.digest();
    };
    const std::uint64_t a = digestOnce();
    const std::uint64_t b = digestOnce();
    EXPECT_EQ(a, b);
}

} // namespace
